package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// panicBackend panics on View — the poisoned-request shape the
// gateway's failure envelope must contain.
type panicBackend struct {
	*fakeBackend
	armed bool
}

func (b *panicBackend) View() *View {
	if b.armed {
		panic("poisoned snapshot")
	}
	return b.fakeBackend.View()
}

// TestGatewayPanicRecovery: a handler panic becomes a 500 JSON error
// and the server keeps answering afterwards.
func TestGatewayPanicRecovery(t *testing.T) {
	b := &panicBackend{fakeBackend: newFakeBackend(), armed: true}
	srv := testGateway(t, b, GatewayConfig{})

	resp, body := get(t, srv.URL+"/api/subjects")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request: status %d, want 500", resp.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e["error"], "internal error") {
		t.Fatalf("panicked request body %q, want a JSON internal error", body)
	}

	b.armed = false
	resp, _ = get(t, srv.URL+"/api/subjects")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d, want 200", resp.StatusCode)
	}
}

// TestGatewayServeStaleHeader: a degraded store keeps answering reads
// from the last-good snapshot, flagged X-Stale so clients know the data
// stopped moving. Healthy reads carry no flag.
func TestGatewayServeStaleHeader(t *testing.T) {
	b := newFakeBackend()
	srv := testGateway(t, b, GatewayConfig{})

	resp, healthy := get(t, srv.URL+"/api/subjects")
	if h := resp.Header.Get("X-Stale"); h != "" {
		t.Fatalf("healthy read carries X-Stale %q", h)
	}

	b.degraded, b.reason = true, "disk failure"
	resp, stale := get(t, srv.URL+"/api/subjects")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: status %d, want 200 (serve stale, not error)", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Stale"); h != "store-degraded" {
		t.Fatalf("degraded read X-Stale %q, want store-degraded", h)
	}
	if stale != healthy {
		t.Error("degraded read did not serve the last-good snapshot")
	}
}

// TestGatewayIngestBodyLimit: an oversized ingest body is refused with
// 413 before the backend sees it.
func TestGatewayIngestBodyLimit(t *testing.T) {
	b := newFakeBackend()
	srv := testGateway(t, b, GatewayConfig{MaxIngestBytes: 128})

	small := `{"docs":[{"title":"ok","text":"hi"}]}`
	resp, err := http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}

	big := fmt.Sprintf(`{"docs":[{"title":"big","text":%q}]}`, strings.Repeat("x", 4096))
	resp, err = http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if b.ingests != 1 {
		t.Errorf("backend saw %d ingests, want 1 (the oversized body must not reach it)", b.ingests)
	}
}

// deadlineBackend blocks Ingest until the request deadline fires, then
// reports a durably-acked prefix with a DeadlineExceeded error — the
// ServingTier mid-batch-expiry shape.
type deadlineBackend struct {
	*fakeBackend
	sawDeadline bool
}

func (b *deadlineBackend) Ingest(ctx context.Context, docs []Doc) ([]string, int, error) {
	if _, ok := ctx.Deadline(); ok {
		b.sawDeadline = true
	}
	<-ctx.Done()
	return []string{"acked-1"}, 0, fmt.Errorf("mine deferred: %w", ctx.Err())
}

// TestGatewayDeadlinePropagatesToIngest: RequestTimeout installs a
// deadline on the backend context; an expiry mid-batch is answered 504
// with the acked prefix in the body, not a dropped connection.
func TestGatewayDeadlinePropagatesToIngest(t *testing.T) {
	b := &deadlineBackend{fakeBackend: newFakeBackend()}
	srv := testGateway(t, b, GatewayConfig{RequestTimeout: 50 * time.Millisecond})

	resp, err := http.Post(srv.URL+"/api/ingest", "application/json",
		strings.NewReader(`{"docs":[{"title":"slow","text":"hi"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if !b.sawDeadline {
		t.Error("backend context carried no deadline")
	}
	var out struct {
		Error string   `json:"error"`
		IDs   []string `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != 1 || out.IDs[0] != "acked-1" {
		t.Errorf("504 body ids %v, want the durably-acked prefix [acked-1]", out.IDs)
	}
	if out.Error == "" {
		t.Error("504 body carries no error description")
	}
}

// TestGatewayDeadlineHeaderTightensOnly: x-deadline-ms can shorten the
// configured budget but never extend it.
func TestGatewayDeadlineHeaderTightensOnly(t *testing.T) {
	g := NewGateway(newFakeBackend(), GatewayConfig{RequestTimeout: time.Second})
	req, _ := http.NewRequest("GET", "/api/subjects", nil)
	if d := g.deadlineFor(req); d != time.Second {
		t.Errorf("no header: %v, want 1s", d)
	}
	req.Header.Set("x-deadline-ms", "100")
	if d := g.deadlineFor(req); d != 100*time.Millisecond {
		t.Errorf("tightening header: %v, want 100ms", d)
	}
	req.Header.Set("x-deadline-ms", "5000")
	if d := g.deadlineFor(req); d != time.Second {
		t.Errorf("loosening header: %v, want the configured 1s", d)
	}
	req.Header.Set("x-deadline-ms", "garbage")
	if d := g.deadlineFor(req); d != time.Second {
		t.Errorf("malformed header: %v, want the configured 1s", d)
	}

	unbounded := NewGateway(newFakeBackend(), GatewayConfig{})
	req, _ = http.NewRequest("GET", "/api/subjects", nil)
	if d := unbounded.deadlineFor(req); d != 0 {
		t.Errorf("no config, no header: %v, want 0", d)
	}
	req.Header.Set("x-deadline-ms", "100")
	if d := unbounded.deadlineFor(req); d != 100*time.Millisecond {
		t.Errorf("header only: %v, want 100ms", d)
	}
}
