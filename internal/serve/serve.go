// Package serve is the live serving tier: the read-side machinery that
// turns the mined corpus into a serving workload — the paper's
// reputation-management scenario, where analysts and dashboards query
// sentiment continuously rather than once per batch job.
//
// The package holds four pieces, composed by the HTTP gateway:
//
//   - Aggregates: incrementally-maintained materialized sentiment
//     aggregates (per subject × feature × polarity × time bucket),
//     updated online at ingest and read through immutable lock-free
//     snapshots, so no query ever re-scans the corpus.
//   - Cache: a bounded LRU over rendered responses, invalidated on
//     ingest through the aggregate generation number.
//   - Limiter: per-tenant token-bucket rate limiting, layered in front
//     of the node-level admission control.
//   - Gateway: the HTTP/JSON query API over a Backend.
//
// Everything is stdlib-only and safe for concurrent use.
package serve

import "math"

// Counts is a positive/negative mention tally — the polarity dimension
// of every aggregate cell.
type Counts struct {
	Positive int `json:"positive"`
	Negative int `json:"negative"`
}

// Total returns the number of polar mentions.
func (c Counts) Total() int { return c.Positive + c.Negative }

// Share returns the rounded positive share as a percentage. See
// SharePercent.
func (c Counts) Share() int { return SharePercent(c.Positive, c.Negative) }

// SharePercent returns the positive share of a mention tally as a
// rounded percentage (0 when empty). Rounding matters at the margins:
// integer flooring renders a 99.9% share as 99 and a 0.1% negative
// share as a spotless 100 — the overview page and the aggregate layer
// share this one helper so they can never disagree.
func SharePercent(positive, negative int) int {
	total := positive + negative
	if total == 0 {
		return 0
	}
	return int(math.Round(100 * float64(positive) / float64(total)))
}
