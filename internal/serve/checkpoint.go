package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A checkpoint makes the serving tier's materialized state durable: the
// full subject × feature × polarity × month aggregate table, the
// query-time sentiment entries behind /api/sentiment, and the set of
// document IDs whose facts those tables already contain — the
// high-watermark a restart repairs forward from by re-mining only the
// documents the durable store holds beyond it.
//
// The on-disk format is a versioned binary codec guarded the same way
// the store's snapshots are: a magic+version header, a varint-encoded
// body, and a CRC32 (IEEE) trailer over everything before it. Files are
// published atomically (temp file + fsync + rename + directory fsync)
// and named by the aggregate generation they capture, so "newest" is
// well-defined without trusting mtimes. A checkpoint that fails its CRC
// or decodes inconsistently is quarantined (renamed *.corrupt) and the
// loader falls back to the next-older generation.

const (
	// checkpointMagic opens every checkpoint file; the trailing two
	// bytes are the big-endian codec version.
	checkpointMagic   = "WFCKPT"
	checkpointVersion = uint16(1)
	// checkpointKeep is how many valid generations WriteCheckpoint
	// retains: the one just written plus one fallback for bit-rot.
	checkpointKeep = 2
)

// Checkpoint is the serving tier's durable state.
type Checkpoint struct {
	// View is the aggregate snapshot (including its generation).
	View *View
	// Entries are the query-time sentiment-index entries, in the
	// deterministic total order the index dumps them in.
	Entries []Entry
	// MinedDocs are the IDs of every document whose facts are folded
	// into View and Entries — the recovery watermark. Sorted.
	MinedDocs []string
	// PendingAnnotate are IDs whose facts are folded in but whose
	// entity annotations were refused (degraded store) — an annotation
	// debt recovery settles once the store is writable again. Sorted.
	PendingAnnotate []string
}

// encode serializes the checkpoint: header, body, CRC trailer.
func (ck *Checkpoint) encode() []byte {
	var b bytes.Buffer
	b.WriteString(checkpointMagic)
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], checkpointVersion)
	b.Write(ver[:])
	encodeViewBody(&b, ck.View, true)
	putUvarint(&b, uint64(len(ck.Entries)))
	for _, e := range ck.Entries {
		putString(&b, e.Subject)
		putString(&b, e.Polarity)
		putString(&b, e.Doc)
		putUvarint(&b, uint64(e.Sentence))
		putString(&b, e.Snippet)
		putString(&b, e.Feature)
	}
	putStrings(&b, ck.MinedDocs)
	putStrings(&b, ck.PendingAnnotate)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])
	return b.Bytes()
}

// decodeCheckpoint parses and CRC-verifies one checkpoint file's bytes.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+2+4 {
		return nil, fmt.Errorf("serve: checkpoint truncated (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("serve: checkpoint CRC mismatch: %08x != %08x", got, want)
	}
	if string(body[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("serve: bad checkpoint magic")
	}
	if v := binary.BigEndian.Uint16(body[len(checkpointMagic):]); v != checkpointVersion {
		return nil, fmt.Errorf("serve: unsupported checkpoint version %d", v)
	}
	d := &decoder{buf: body[len(checkpointMagic)+2:]}
	ck := &Checkpoint{}
	ck.View = decodeViewBody(d)
	n := d.uvarint()
	if max := uint64(len(d.buf)); n > max { // each entry is ≥ 6 bytes
		d.fail("entry count %d exceeds remaining bytes", n)
	}
	if d.err == nil {
		ck.Entries = make([]Entry, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			ck.Entries = append(ck.Entries, Entry{
				Subject:  d.string(),
				Polarity: d.string(),
				Doc:      d.string(),
				Sentence: int(d.uvarint()),
				Snippet:  d.string(),
				Feature:  d.string(),
			})
		}
	}
	ck.MinedDocs = d.strings()
	ck.PendingAnnotate = d.strings()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("serve: checkpoint has %d trailing bytes", len(d.buf))
	}
	return ck, nil
}

// encodeViewBody writes the aggregate table in a deterministic order
// (sorted subjects, months and aspects). withGen=false is the
// fingerprint form: two views holding the same cells hash identically
// no matter how many batches built them.
func encodeViewBody(b *bytes.Buffer, v *View, withGen bool) {
	if withGen {
		putUvarint(b, v.gen)
	}
	putUvarint(b, uint64(v.facts))
	putCounts(b, v.totals)
	putUvarint(b, uint64(len(v.names)))
	for _, name := range v.names {
		s := v.subjects[name]
		putString(b, name)
		putCounts(b, s.total)
		months := sortedKeys(s.months)
		putUvarint(b, uint64(len(months)))
		for _, m := range months {
			putString(b, m)
			putCounts(b, s.months[m])
		}
		aspects := sortedKeys(s.aspects)
		putUvarint(b, uint64(len(aspects)))
		for _, a := range aspects {
			putString(b, a)
			putCounts(b, s.aspects[a])
		}
	}
}

// decodeViewBody is encodeViewBody's inverse (always with generation).
func decodeViewBody(d *decoder) *View {
	v := &View{
		gen:      d.uvarint(),
		facts:    int(d.uvarint()),
		totals:   d.counts(),
		subjects: map[string]*subjectAgg{},
	}
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		name := d.string()
		s := &subjectAgg{
			total:   d.counts(),
			months:  map[string]Counts{},
			aspects: map[string]Counts{},
		}
		for j, m := uint64(0), d.uvarint(); j < m && d.err == nil; j++ {
			key := d.string()
			s.months[key] = d.counts()
		}
		for j, m := uint64(0), d.uvarint(); j < m && d.err == nil; j++ {
			key := d.string()
			s.aspects[key] = d.counts()
		}
		v.subjects[name] = s
		v.names = append(v.names, name)
	}
	return v
}

// Fingerprint returns a deterministic digest of the aggregate table —
// every subject's totals, months and aspects plus the corpus totals,
// excluding the generation counter. Two views that answer every query
// identically fingerprint identically, which is what the chaos suite
// compares between a recovered tier and an offline full re-mine.
func (v *View) Fingerprint() string {
	var b bytes.Buffer
	encodeViewBody(&b, v, false)
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

// NewAggregatesFrom returns an aggregate store whose first snapshot is
// the given restored view — the checkpoint-recovery constructor.
func NewAggregatesFrom(v *View) *Aggregates {
	a := &Aggregates{}
	a.view.Store(v)
	return a
}

// checkpointName returns the file name for a generation.
func checkpointName(gen uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ck", gen)
}

// checkpointGen parses a generation back out of a checkpoint file name.
func checkpointGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ck") {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ck"), 16, 64)
	return gen, err == nil
}

// WriteCheckpoint atomically publishes a checkpoint into dir and prunes
// old generations (keeping checkpointKeep valid files). wrap, when
// non-nil, wraps the temp file handle — the deterministic disk-fault
// injector's hook in crash tests. The write path mirrors the store's
// compaction: write temp, fsync file, rename into place, fsync the
// directory, so a crash at any instant leaves either the old set of
// checkpoints or the old set plus one complete new file — never a torn
// one under the real name.
func WriteCheckpoint(dir string, ck *Checkpoint, wrap func(io.WriteCloser) io.WriteCloser) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	data := ck.encode()
	f, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return "", fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	tmpPath := f.Name()
	var w io.WriteCloser = f
	if wrap != nil {
		w = wrap(f)
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		os.Remove(tmpPath)
		return "", fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		w.Close()
		os.Remove(tmpPath)
		return "", fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmpPath)
		return "", fmt.Errorf("serve: checkpoint close: %w", err)
	}
	final := filepath.Join(dir, checkpointName(ck.View.Generation()))
	if err := os.Rename(tmpPath, final); err != nil {
		os.Remove(tmpPath)
		return "", fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("serve: checkpoint dir sync: %w", err)
	}
	pruneCheckpoints(dir, ck.View.Generation())
	return final, nil
}

// pruneCheckpoints removes checkpoint files older than the
// checkpointKeep newest, never touching generations above the one just
// written. Best-effort: pruning failures don't fail the write.
func pruneCheckpoints(dir string, written uint64) {
	gens := listCheckpointGens(dir)
	keep := 0
	for _, gen := range gens { // gens is newest-first
		if gen > written {
			continue
		}
		keep++
		if keep > checkpointKeep {
			os.Remove(filepath.Join(dir, checkpointName(gen)))
		}
	}
}

// listCheckpointGens returns the generations present in dir, newest
// first.
func listCheckpointGens(dir string) []uint64 {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, de := range des {
		if gen, ok := checkpointGen(de.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens
}

// LoadCheckpoint returns the newest valid checkpoint in dir (nil when
// the directory holds none), quarantining every newer file that fails
// verification by renaming it *.corrupt, and reports how many files it
// quarantined. Stray temp files from a crash mid-write are removed —
// they were never published, so they carry no authority.
func LoadCheckpoint(dir string) (*Checkpoint, int, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	quarantined := 0
	for _, gen := range listCheckpointGens(dir) {
		path := filepath.Join(dir, checkpointName(gen))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, quarantined, fmt.Errorf("serve: read checkpoint: %w", err)
		}
		ck, err := decodeCheckpoint(data)
		if err != nil {
			// Bit rot or a torn write that somehow reached the real
			// name: quarantine for post-mortem and fall back.
			os.Rename(path, path+".corrupt")
			quarantined++
			continue
		}
		return ck, quarantined, nil
	}
	return nil, quarantined, nil
}

// syncDir fsyncs a directory so a rename into it is durable — the same
// ordering discipline as the store's compaction.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- varint codec helpers ---

func putUvarint(b *bytes.Buffer, v uint64) {
	var scratch [binary.MaxVarintLen64]byte
	b.Write(scratch[:binary.PutUvarint(scratch[:], v)])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func putStrings(b *bytes.Buffer, ss []string) {
	putUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		putString(b, s)
	}
}

func putCounts(b *bytes.Buffer, c Counts) {
	putUvarint(b, uint64(c.Positive))
	putUvarint(b, uint64(c.Negative))
}

func sortedKeys(m map[string]Counts) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// decoder is a bounds-checked reader over the checkpoint body; the
// first malformed field latches err and every later read returns zero
// values, so decode call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("serve: checkpoint decode: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) strings() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("string count %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.string())
	}
	return out
}

func (d *decoder) counts() Counts {
	return Counts{Positive: int(d.uvarint()), Negative: int(d.uvarint())}
}
