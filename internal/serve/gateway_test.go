package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// fakeBackend is an in-memory Backend for gateway tests: ingest mines
// one positive fact per document about the document's title.
type fakeBackend struct {
	agg      *Aggregates
	entries  map[string][]Entry
	docs     int
	degraded bool
	reason   string
	ingests  int
}

func newFakeBackend() *fakeBackend {
	b := &fakeBackend{agg: NewAggregates(), entries: map[string][]Entry{}}
	b.seed("nr70", "battery life", "2004-07-02", true)
	b.seed("nr70", "pictures", "2004-08-11", false)
	b.seed("clie", "", "2004-07-20", true)
	b.docs = 3
	return b
}

func (b *fakeBackend) seed(subject, feature, date string, pos bool) {
	b.agg.Apply([]Fact{{Subject: subject, Feature: feature, Date: date, Positive: pos}})
	pol := "-"
	if pos {
		pol = "+"
	}
	b.entries[subject] = append(b.entries[subject], Entry{
		Subject: subject, Polarity: pol, Doc: fmt.Sprintf("doc-%06d", len(b.entries[subject])),
		Sentence: 0, Snippet: "a snippet about " + subject, Feature: feature,
	})
}

func (b *fakeBackend) View() *View              { return b.agg.View() }
func (b *fakeBackend) Degraded() (bool, string) { return b.degraded, b.reason }
func (b *fakeBackend) NumDocs() int             { return b.docs }

func (b *fakeBackend) Entries(_ context.Context, subject string) []Entry {
	return b.entries[strings.ToLower(subject)]
}

func (b *fakeBackend) Ingest(_ context.Context, docs []Doc) ([]string, int, error) {
	b.ingests++
	var facts []Fact
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = fmt.Sprintf("ingested-%d-%d", b.ingests, i)
		facts = append(facts, Fact{Subject: d.Title, Date: d.Date, Positive: true})
		b.docs++
	}
	b.agg.Apply(facts)
	return ids, len(facts), nil
}

func testGateway(t *testing.T, b Backend, cfg GatewayConfig) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewGateway(b, cfg))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestGatewaySubjectsSchema pins the /api/subjects wire format: rows
// carry exactly the lower-case keys subject/positive/negative/share.
// This is the compat contract the JSON-tag fix established — a rename
// or a dropped tag fails here before it breaks a dashboard.
func TestGatewaySubjectsSchema(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{})
	resp, body := get(t, srv.URL+"/api/subjects")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("bad json: %v (%s)", err, body)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		want := []string{"negative", "positive", "share", "subject"}
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Fatalf("row keys = %v, want %v (schema compat)", keys, want)
		}
	}
	// Share is rounded, not floored: nr70 is 1/2 = 50.
	if !strings.Contains(body, `"share":50`) {
		t.Errorf("expected rounded share 50 in %s", body)
	}
}

func TestGatewaySentiment(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{})
	resp, body := get(t, srv.URL+"/api/sentiment?name=nr70")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var entries []Entry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Polarity != "+" || entries[0].Subject != "nr70" {
		t.Fatalf("entry = %+v", entries[0])
	}
	// Unknown subject: empty array, not null, still 200.
	if _, body := get(t, srv.URL+"/api/sentiment?name=nosuch"); strings.TrimSpace(body) != "[]" {
		t.Errorf("unknown subject body = %q, want []", body)
	}
	if resp, _ := get(t, srv.URL+"/api/sentiment"); resp.StatusCode != 400 {
		t.Errorf("missing name = %d, want 400", resp.StatusCode)
	}
}

func TestGatewayTrendAndAspects(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{})
	resp, body := get(t, srv.URL+"/api/trend?name=nr70")
	if resp.StatusCode != 200 {
		t.Fatalf("trend status = %d", resp.StatusCode)
	}
	var trend struct {
		Subject string   `json:"subject"`
		Series  []Bucket `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &trend); err != nil {
		t.Fatalf("bad trend json: %v", err)
	}
	if len(trend.Series) != 2 || trend.Series[0].Month != "2004-07" || trend.Series[1].Month != "2004-08" {
		t.Fatalf("series = %+v", trend.Series)
	}
	_, body = get(t, srv.URL+"/api/aspects?name=nr70")
	var aspects struct {
		Aspects []AspectCount `json:"aspects"`
	}
	if err := json.Unmarshal([]byte(body), &aspects); err != nil {
		t.Fatalf("bad aspects json: %v", err)
	}
	if len(aspects.Aspects) != 2 {
		t.Fatalf("aspects = %+v", aspects.Aspects)
	}
	for _, ep := range []string{"/api/trend", "/api/aspects"} {
		if resp, _ := get(t, srv.URL+ep); resp.StatusCode != 400 {
			t.Errorf("%s without name = %d, want 400", ep, resp.StatusCode)
		}
	}
}

func TestGatewayOverview(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{})
	_, body := get(t, srv.URL+"/api/overview")
	var ov struct {
		Documents  int    `json:"documents"`
		Subjects   int    `json:"subjects"`
		Facts      int    `json:"facts"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(body), &ov); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if ov.Documents != 3 || ov.Subjects != 2 || ov.Facts != 3 || ov.Generation != 3 {
		t.Fatalf("overview = %+v", ov)
	}
}

// TestGatewayCacheHitMissAndIngestInvalidation is the serving tier's
// core freshness contract: the second identical query is a cache hit,
// and a query after an ingest batch is a miss that reflects the new
// facts — a post-ingest response is never staler than one batch.
func TestGatewayCacheHitMissAndIngestInvalidation(t *testing.T) {
	b := newFakeBackend()
	srv := testGateway(t, b, GatewayConfig{})

	resp, body1 := get(t, srv.URL+"/api/subjects")
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first query X-Cache = %q", h)
	}
	resp, body2 := get(t, srv.URL+"/api/subjects")
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("second query X-Cache = %q", h)
	}
	if body1 != body2 {
		t.Fatal("cache hit served different bytes")
	}

	// Ingest a batch minting a brand-new subject.
	post, err := http.Post(srv.URL+"/api/ingest", "application/json",
		strings.NewReader(`{"docs":[{"title":"talon","date":"2004-09-09","text":"the talon is great"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != 200 {
		t.Fatalf("ingest status = %d", post.StatusCode)
	}
	var ack struct {
		IDs        []string `json:"ids"`
		Facts      int      `json:"facts"`
		Generation uint64   `json:"generation"`
	}
	if err := json.NewDecoder(post.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if len(ack.IDs) != 1 || ack.Facts != 1 {
		t.Fatalf("ingest ack = %+v", ack)
	}

	// The very next query must re-render (miss) and include the new
	// subject: no response staler than the ingest batch.
	resp, body3 := get(t, srv.URL+"/api/subjects")
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("post-ingest query X-Cache = %q, stale response served", h)
	}
	if !strings.Contains(body3, `"subject":"talon"`) {
		t.Fatalf("post-ingest subjects missing new subject: %s", body3)
	}
	// And the one after that is a hit again, at the new generation.
	if resp, _ := get(t, srv.URL+"/api/subjects"); resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("re-query after invalidation did not cache")
	}
}

func TestGatewayIngestValidation(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{})
	if resp, _ := get(t, srv.URL+"/api/ingest"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest = %d, want 405", resp.StatusCode)
	}
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := post(`not json`); s != 400 {
		t.Errorf("bad body = %d, want 400", s)
	}
	if s := post(`{"docs":[]}`); s != 400 {
		t.Errorf("empty batch = %d, want 400", s)
	}
}

// TestGatewayRateLimit pins the 429 path: a tenant's bucket empties
// after its burst and other tenants are unaffected.
func TestGatewayRateLimit(t *testing.T) {
	srv := testGateway(t, newFakeBackend(), GatewayConfig{TenantRate: -1, TenantBurst: 2})
	do := func(tenant string) int {
		req, _ := http.NewRequest("GET", srv.URL+"/api/overview", nil)
		if tenant != "" {
			req.Header.Set("x-tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 2; i++ {
		if s := do("acme"); s != 200 {
			t.Fatalf("request %d = %d within burst", i, s)
		}
	}
	if s := do("acme"); s != http.StatusTooManyRequests {
		t.Fatalf("over-burst request = %d, want 429", s)
	}
	// Another tenant and the default bucket still serve.
	if s := do("globex"); s != 200 {
		t.Fatalf("other tenant = %d", s)
	}
	if s := do(""); s != 200 {
		t.Fatalf("default tenant = %d", s)
	}
	// /healthz is exempt: probes must not burn tenant tokens.
	if resp, _ := get(t, srv.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz limited: %d", resp.StatusCode)
	}
}

// TestGatewayHealthzDegraded pins the 503 semantics: a degraded
// (read-only) store fails the health probe with the reason, and the
// ingest endpoint refuses writes, while reads keep serving.
func TestGatewayHealthzDegraded(t *testing.T) {
	b := newFakeBackend()
	srv := testGateway(t, b, GatewayConfig{})
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy probe = %d %s", resp.StatusCode, body)
	}
	b.degraded, b.reason = true, "wal append failed"
	resp, body = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded probe = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, `"status":"degraded"`) || !strings.Contains(body, "wal append failed") {
		t.Fatalf("degraded body = %s", body)
	}
	// Writes are refused; reads keep working.
	post, err := http.Post(srv.URL+"/api/ingest", "application/json",
		strings.NewReader(`{"docs":[{"text":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest = %d, want 503", post.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/api/subjects"); resp.StatusCode != 200 {
		t.Fatalf("degraded read = %d, want 200", resp.StatusCode)
	}
}
