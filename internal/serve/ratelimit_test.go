package serve

import (
	"fmt"
	"testing"
	"time"
)

// fixedClock is a manually-advanced clock for deterministic refill.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstThenDeny(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: -1, Burst: 3})
	for i := 0; i < 3; i++ {
		if !l.Allow("acme") {
			t.Fatalf("request %d denied within burst", i)
		}
	}
	if l.Allow("acme") {
		t.Fatal("request beyond burst allowed (rate -1: no refill)")
	}
	// Other tenants draw from their own buckets.
	if !l.Allow("globex") {
		t.Fatal("fresh tenant denied")
	}
	if !l.Allow("") {
		t.Fatal("default tenant denied")
	}
}

func TestLimiterRefill(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 2, Now: clk.now})
	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("burst denied")
	}
	if l.Allow("a") {
		t.Fatal("empty bucket allowed")
	}
	clk.advance(100 * time.Millisecond) // 1 token at 10/s
	if !l.Allow("a") {
		t.Fatal("refilled token denied")
	}
	if l.Allow("a") {
		t.Fatal("second token granted after 0.1s at 10/s")
	}
	// Refill caps at the burst size no matter how long the idle.
	clk.advance(time.Hour)
	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("burst after long idle denied")
	}
	if l.Allow("a") {
		t.Fatal("refill exceeded burst cap")
	}
}

func TestLimiterTenantBound(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, MaxTenants: 4, Now: clk.now})
	for i := 0; i < 16; i++ {
		l.Allow(fmt.Sprintf("tenant-%d", i))
	}
	if n := l.Tenants(); n > 4 {
		t.Fatalf("tracked tenants = %d, bound is 4", n)
	}
	// Idle tenants refill to full and are swept, making room again.
	clk.advance(10 * time.Second)
	if !l.Allow("tenant-new") {
		t.Fatal("new tenant denied after idle sweep")
	}
}

func TestLimiterOverflowSharesDefaultBucket(t *testing.T) {
	// With no refill and the map full of never-full buckets, newcomers
	// must fold into the default bucket rather than minting new ones.
	l := NewLimiter(LimiterConfig{Rate: -1, Burst: 2, MaxTenants: 2})
	l.Allow("a") // occupies slot 1
	l.Allow("b") // occupies slot 2
	before := l.Tenants()
	l.Allow("c")
	l.Allow("d")
	if n := l.Tenants(); n > before+1 { // at most the default bucket added
		t.Fatalf("overflow tenants grew the map: %d -> %d", before, n)
	}
}
