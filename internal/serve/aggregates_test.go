package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestSharePercentRounds(t *testing.T) {
	cases := []struct {
		pos, neg, want int
	}{
		{0, 0, 0},
		{1, 0, 100},
		{0, 1, 0},
		{999, 1, 100}, // 99.9% must not floor to 99
		{1, 999, 0},
		{1, 1, 50},
		{2, 1, 67}, // 66.7 rounds up
		{1, 2, 33},
	}
	for _, c := range cases {
		if got := SharePercent(c.pos, c.neg); got != c.want {
			t.Errorf("SharePercent(%d, %d) = %d, want %d", c.pos, c.neg, got, c.want)
		}
	}
}

func TestAggregatesApply(t *testing.T) {
	a := NewAggregates()
	if g := a.View().Generation(); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	gen := a.Apply([]Fact{
		{Subject: "NR70", Feature: "battery life", Date: "2004-07-14", Positive: true},
		{Subject: "nr70", Feature: "battery life", Date: "2004-07-20", Positive: false},
		{Subject: "nr70", Feature: "pictures", Date: "2004-08-01", Positive: true},
		{Subject: "clie", Date: "bogus", Positive: true},
	})
	if gen != 1 {
		t.Fatalf("generation after first batch = %d", gen)
	}
	v := a.View()
	if got := v.Subjects(); !reflect.DeepEqual(got, []string{"clie", "nr70"}) {
		t.Fatalf("Subjects() = %v", got)
	}
	if c := v.Counts("NR70"); c != (Counts{Positive: 2, Negative: 1}) {
		t.Fatalf("Counts(NR70) = %+v", c)
	}
	series := v.Series("nr70")
	want := []Bucket{
		{Month: "2004-07", Counts: Counts{Positive: 1, Negative: 1}},
		{Month: "2004-08", Counts: Counts{Positive: 1}},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("Series(nr70) = %+v", series)
	}
	// A malformed date lands in totals but no bucket.
	if got := v.Series("clie"); len(got) != 0 {
		t.Fatalf("Series(clie) = %+v, want no buckets", got)
	}
	if c := v.Counts("clie"); c != (Counts{Positive: 1}) {
		t.Fatalf("Counts(clie) = %+v", c)
	}
	aspects := v.Aspects("nr70")
	wantAspects := []AspectCount{
		{Feature: "battery life", Counts: Counts{Positive: 1, Negative: 1}},
		{Feature: "pictures", Counts: Counts{Positive: 1}},
	}
	if !reflect.DeepEqual(aspects, wantAspects) {
		t.Fatalf("Aspects(nr70) = %+v", aspects)
	}
	if tot := v.Totals(); tot != (Counts{Positive: 3, Negative: 1}) {
		t.Fatalf("Totals() = %+v", tot)
	}
	if v.Facts() != 4 {
		t.Fatalf("Facts() = %d", v.Facts())
	}
}

func TestAggregatesEmptyBatchBumpsGeneration(t *testing.T) {
	a := NewAggregates()
	a.Apply([]Fact{{Subject: "x", Positive: true}})
	if gen := a.Apply(nil); gen != 2 {
		t.Fatalf("empty batch generation = %d, want 2", gen)
	}
	// The content is shared with the previous view, not rebuilt.
	if c := a.View().Counts("x"); c != (Counts{Positive: 1}) {
		t.Fatalf("Counts(x) = %+v after empty batch", c)
	}
}

func TestAggregatesSnapshotImmutable(t *testing.T) {
	a := NewAggregates()
	a.Apply([]Fact{{Subject: "s", Feature: "f", Date: "2004-01-02", Positive: true}})
	old := a.View()
	a.Apply([]Fact{
		{Subject: "s", Feature: "f", Date: "2004-01-03", Positive: false},
		{Subject: "t", Positive: true},
	})
	// The old snapshot must still answer with its old numbers.
	if c := old.Counts("s"); c != (Counts{Positive: 1}) {
		t.Fatalf("old snapshot Counts(s) = %+v, mutated in place", c)
	}
	if len(old.Subjects()) != 1 {
		t.Fatalf("old snapshot Subjects() = %v", old.Subjects())
	}
	if c := a.View().Counts("s"); c != (Counts{Positive: 1, Negative: 1}) {
		t.Fatalf("new snapshot Counts(s) = %+v", c)
	}
}

// TestAggregatesConcurrentReadersWriters drives readers against a
// stream of Apply batches under the race detector: readers must always
// see a coherent snapshot (totals equal to the sum over subjects).
func TestAggregatesConcurrentReadersWriters(t *testing.T) {
	a := NewAggregates()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := a.View()
				sum := Counts{}
				for _, s := range v.Subjects() {
					c := v.Counts(s)
					sum.Positive += c.Positive
					sum.Negative += c.Negative
				}
				if sum != v.Totals() {
					t.Errorf("torn snapshot: subjects sum %+v != totals %+v", sum, v.Totals())
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		a.Apply([]Fact{
			{Subject: fmt.Sprintf("s%d", i%7), Date: "2004-05-05", Positive: i%3 != 0},
		})
	}
	close(stop)
	wg.Wait()
}
