package serve

import (
	"fmt"
	"testing"
)

func TestCacheHitMissAndGenerationInvalidation(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k", 1, []byte("v1"))
	if body, ok := c.Get("k", 1); !ok || string(body) != "v1" {
		t.Fatalf("Get(k, 1) = %q, %v", body, ok)
	}
	// Ingest bumps the generation: the entry must miss and be dropped.
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry retained, Len = %d", c.Len())
	}
	c.Put("k", 2, []byte("v2"))
	if body, ok := c.Get("k", 2); !ok || string(body) != "v2" {
		t.Fatalf("Get(k, 2) = %q, %v", body, ok)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1, []byte("a"))
	c.Put("b", 1, []byte("b"))
	c.Get("a", 1) // a is now most recently used
	c.Put("c", 1, []byte("c"))
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Fatalf("entry %q evicted out of order", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("k", 1, []byte("v"))
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("disabled cache served a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache Len = %d", c.Len())
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(2)
	c.Put("k", 1, []byte("old"))
	c.Put("k", 3, []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("duplicate key grew cache, Len = %d", c.Len())
	}
	if body, ok := c.Get("k", 3); !ok || string(body) != "new" {
		t.Fatalf("Get(k, 3) = %q, %v", body, ok)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%16)
				c.Put(k, uint64(i), []byte(k))
				c.Get(k, uint64(i))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
