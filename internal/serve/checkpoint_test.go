package serve

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testFacts builds a small deterministic fact stream: two subjects,
// two months, mixed polarity, one aspected fact.
func testFacts() []Fact {
	return []Fact{
		{Subject: "NR70", Feature: "pictures", Date: "2003-01-05", Positive: true},
		{Subject: "NR70", Date: "2003-02-11", Positive: true},
		{Subject: "CLIE", Date: "2003-01-20", Positive: false},
		{Subject: "CLIE", Feature: "screen", Date: "2003-02-02", Positive: false},
	}
}

func testCheckpoint(batches int) *Checkpoint {
	a := NewAggregates()
	facts := testFacts()
	for i := 0; i < batches; i++ {
		a.Apply(facts)
	}
	return &Checkpoint{
		View: a.View(),
		Entries: []Entry{
			{Subject: "CLIE", Polarity: "-", Doc: "d2", Sentence: 0, Snippet: "the CLIE disappointed", Feature: ""},
			{Subject: "NR70", Polarity: "+", Doc: "d1", Sentence: 1, Snippet: "takes excellent pictures", Feature: "pictures"},
		},
		MinedDocs:       []string{"d1", "d2"},
		PendingAnnotate: []string{"d2"},
	}
}

func mustWrite(t *testing.T, dir string, ck *Checkpoint) string {
	t.Helper()
	path, err := WriteCheckpoint(dir, ck, nil)
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return path
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(3)
	path := mustWrite(t, dir, ck)
	if want := filepath.Join(dir, checkpointName(ck.View.Generation())); path != want {
		t.Fatalf("checkpoint path %q, want %q", path, want)
	}

	got, quarantined, err := LoadCheckpoint(dir)
	if err != nil || quarantined != 0 {
		t.Fatalf("LoadCheckpoint: quarantined=%d err=%v", quarantined, err)
	}
	if got == nil {
		t.Fatal("LoadCheckpoint returned nil for a freshly written checkpoint")
	}
	if got.View.Generation() != ck.View.Generation() {
		t.Errorf("generation %d, want %d", got.View.Generation(), ck.View.Generation())
	}
	if got.View.Fingerprint() != ck.View.Fingerprint() {
		t.Errorf("fingerprint mismatch after round trip")
	}
	if got.View.Facts() != ck.View.Facts() {
		t.Errorf("facts %d, want %d", got.View.Facts(), ck.View.Facts())
	}
	if !reflect.DeepEqual(got.Entries, ck.Entries) {
		t.Errorf("entries %+v, want %+v", got.Entries, ck.Entries)
	}
	if !reflect.DeepEqual(got.MinedDocs, ck.MinedDocs) {
		t.Errorf("mined docs %v, want %v", got.MinedDocs, ck.MinedDocs)
	}
	if !reflect.DeepEqual(got.PendingAnnotate, ck.PendingAnnotate) {
		t.Errorf("pending annotate %v, want %v", got.PendingAnnotate, ck.PendingAnnotate)
	}
	// The restored view must answer queries like the original.
	for _, s := range ck.View.Subjects() {
		if got.View.Counts(s) != ck.View.Counts(s) {
			t.Errorf("%s: counts %+v != %+v", s, got.View.Counts(s), ck.View.Counts(s))
		}
		if !reflect.DeepEqual(got.View.Series(s), ck.View.Series(s)) {
			t.Errorf("%s: series mismatch", s)
		}
		if !reflect.DeepEqual(got.View.Aspects(s), ck.View.Aspects(s)) {
			t.Errorf("%s: aspects mismatch", s)
		}
	}
}

// TestCheckpointFingerprintIgnoresGeneration: the fingerprint compares
// what the view would answer, not how many batches built it — the chaos
// suite's equality check between a recovered tier (many per-doc repair
// publishes) and an offline re-mine (one seed publish).
func TestCheckpointFingerprintIgnoresGeneration(t *testing.T) {
	one := NewAggregates()
	one.Apply(testFacts())

	perFact := NewAggregates()
	for _, f := range testFacts() {
		perFact.Apply([]Fact{f})
	}

	a, b := one.View(), perFact.View()
	if a.Generation() == b.Generation() {
		t.Fatalf("test needs distinct generations, both %d", a.Generation())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same cells, different fingerprints: %s != %s", a.Fingerprint(), b.Fingerprint())
	}

	perFact.Apply([]Fact{{Subject: "NR70", Date: "2003-03-01", Positive: false}})
	if a.Fingerprint() == perFact.View().Fingerprint() {
		t.Error("different cells, same fingerprint")
	}
}

func TestLoadCheckpointEmpty(t *testing.T) {
	ck, quarantined, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing"))
	if ck != nil || quarantined != 0 || err != nil {
		t.Fatalf("missing dir: ck=%v quarantined=%d err=%v", ck, quarantined, err)
	}
	ck, quarantined, err = LoadCheckpoint(t.TempDir())
	if ck != nil || quarantined != 0 || err != nil {
		t.Fatalf("empty dir: ck=%v quarantined=%d err=%v", ck, quarantined, err)
	}
}

// TestCheckpointQuarantineFallsBack: a bit-flipped newest checkpoint is
// renamed *.corrupt and the loader restores the older generation.
func TestCheckpointQuarantineFallsBack(t *testing.T) {
	dir := t.TempDir()
	older := testCheckpoint(1)
	mustWrite(t, dir, older)
	newer := testCheckpoint(2)
	path := mustWrite(t, dir, newer)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, quarantined, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", quarantined)
	}
	if got == nil || got.View.Generation() != older.View.Generation() {
		t.Fatalf("fallback generation: got %+v, want gen %d", got, older.View.Generation())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still present under its real name")
	}
}

// TestCheckpointTruncatedQuarantine: a truncated file (even below the
// header size) quarantines rather than erroring the boot.
func TestCheckpointTruncatedQuarantine(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, dir, testCheckpoint(1))
	path := mustWrite(t, dir, testCheckpoint(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, quarantined, err := LoadCheckpoint(dir)
	if err != nil || quarantined != 1 || got == nil {
		t.Fatalf("got=%v quarantined=%d err=%v, want older checkpoint, 1 quarantine", got, quarantined, err)
	}
}

// TestLoadCheckpointRemovesStrayTemp: a crash mid-write leaves a .tmp
// file that was never published; the loader deletes it and ignores it.
func TestLoadCheckpointRemovesStrayTemp(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(1)
	mustWrite(t, dir, ck)
	stray := filepath.Join(dir, "checkpoint-12345.tmp")
	if err := os.WriteFile(stray, []byte("torn half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, quarantined, err := LoadCheckpoint(dir)
	if err != nil || quarantined != 0 || got == nil {
		t.Fatalf("got=%v quarantined=%d err=%v", got, quarantined, err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray temp file survived load")
	}
}

// TestWriteCheckpointPrunes: only checkpointKeep generations survive a
// write; the newest is always among them.
func TestWriteCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	var lastGen uint64
	for i := 1; i <= checkpointKeep+2; i++ {
		ck := testCheckpoint(i)
		mustWrite(t, dir, ck)
		lastGen = ck.View.Generation()
	}
	gens := listCheckpointGens(dir)
	if len(gens) != checkpointKeep {
		t.Fatalf("kept %d generations %v, want %d", len(gens), gens, checkpointKeep)
	}
	if gens[0] != lastGen {
		t.Errorf("newest kept generation %d, want %d", gens[0], lastGen)
	}
}

// failingWriter fails every write — the injected-fault shape of a disk
// that dies mid-checkpoint.
type failingWriter struct{ io.WriteCloser }

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("injected write failure") }

// TestWriteCheckpointFailureLeavesOldIntact: a failed write publishes
// nothing — no torn file under the real name, no stray temp, and the
// previous checkpoint still loads.
func TestWriteCheckpointFailureLeavesOldIntact(t *testing.T) {
	dir := t.TempDir()
	old := testCheckpoint(1)
	mustWrite(t, dir, old)

	_, err := WriteCheckpoint(dir, testCheckpoint(2), func(w io.WriteCloser) io.WriteCloser {
		return failingWriter{w}
	})
	if err == nil {
		t.Fatal("WriteCheckpoint succeeded through a failing writer")
	}

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Errorf("stray temp file left behind: %s", de.Name())
		}
	}
	got, quarantined, err := LoadCheckpoint(dir)
	if err != nil || quarantined != 0 || got == nil {
		t.Fatalf("got=%v quarantined=%d err=%v", got, quarantined, err)
	}
	if got.View.Generation() != old.View.Generation() {
		t.Errorf("loaded generation %d, want the old %d", got.View.Generation(), old.View.Generation())
	}
}
