package serve

import (
	"sync"
	"time"

	"webfountain/internal/metrics"
)

var rateDenied = metrics.Default().Counter("serve.ratelimit.denied")

// LimiterConfig tunes the per-tenant token buckets. Zero values select
// defaults.
type LimiterConfig struct {
	// Rate is the steady-state tokens (requests) per second granted to
	// each tenant (default 50). A negative rate disables refill — the
	// bucket holds exactly Burst requests, ever — which makes limiter
	// behavior deterministic in tests.
	Rate float64
	// Burst is the bucket size: how far a tenant may briefly exceed the
	// steady rate (default 100).
	Burst int
	// MaxTenants bounds the tracked-bucket map (default 1024). Once the
	// bound is reached, previously-unseen tenants share the default
	// bucket instead of minting new ones, so a tenant-header spray
	// cannot grow memory without bound.
	MaxTenants int
	// Now overrides the clock, for tests (default time.Now).
	Now func() time.Time
}

// withDefaults clamps zero fields to the documented defaults.
func (cfg LimiterConfig) withDefaults() LimiterConfig {
	if cfg.Rate == 0 {
		cfg.Rate = 50
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 100
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter applies per-tenant token-bucket rate limiting: each tenant
// (the x-tenant header; "" is the default tenant) draws from its own
// bucket, so one chatty dashboard cannot starve the rest. It layers on
// the node-level admission control: admission bounds total concurrent
// work, the limiter apportions the admitted rate across tenants. Safe
// for concurrent use.
type Limiter struct {
	mu      sync.Mutex
	cfg     LimiterConfig
	buckets map[string]*bucket
}

// NewLimiter returns a limiter with the given configuration. The
// default tenant's bucket exists from the start: it is the overflow
// target once MaxTenants is reached, so it must never be minted past
// the bound itself.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, buckets: map[string]*bucket{
		"": {tokens: float64(cfg.Burst), last: cfg.Now()},
	}}
}

// Allow reports whether the tenant may make one request now, consuming
// a token if so.
func (l *Limiter) Allow(tenant string) bool {
	now := l.cfg.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= l.cfg.MaxTenants {
			// Over the bound: fold the newcomer into the default bucket
			// rather than growing the map (sweep first — idle tenants'
			// full buckets are reclaimable).
			l.sweep(now)
		}
		if len(l.buckets) >= l.cfg.MaxTenants {
			tenant = ""
			b = l.buckets[tenant]
		}
		if b == nil {
			b = &bucket{tokens: float64(l.cfg.Burst), last: now}
			l.buckets[tenant] = b
		}
	}
	l.refill(b, now)
	if b.tokens < 1 {
		rateDenied.Inc()
		return false
	}
	b.tokens--
	return true
}

// refill credits the bucket for the time since its last use, capped at
// the burst size.
func (l *Limiter) refill(b *bucket, now time.Time) {
	if l.cfg.Rate < 0 {
		return // test mode: no refill
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.cfg.Rate
		if max := float64(l.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
}

// sweep drops buckets that have refilled to full — tenants idle long
// enough that forgetting them is indistinguishable from remembering
// them. Called with the mutex held.
func (l *Limiter) sweep(now time.Time) {
	for t, b := range l.buckets {
		if t == "" {
			continue // the default bucket is the overflow target; keep it
		}
		l.refill(b, now)
		if b.tokens >= float64(l.cfg.Burst) {
			delete(l.buckets, t)
		}
	}
}

// Tenants returns the number of tracked tenant buckets.
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
