package serve

import (
	"container/list"
	"sync"

	"webfountain/internal/metrics"
)

// Cache metrics: hit/miss ratio is the read-storm probe's headline
// number, and stale drops count how often ingest invalidated a result.
var (
	cacheHits      = metrics.Default().Counter("serve.cache.hits")
	cacheMisses    = metrics.Default().Counter("serve.cache.misses")
	cacheEvictions = metrics.Default().Counter("serve.cache.evictions")
	cacheStale     = metrics.Default().Counter("serve.cache.stale")
)

// Cache is a bounded LRU over rendered responses, keyed by request
// (path + query) and tagged with the aggregate generation the response
// was rendered at. Invalidation is by generation: ingest bumps the
// aggregate generation, so every entry minted before the bump misses on
// its next lookup and is dropped — a cached response can therefore
// never be staler than one ingest batch. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

// centry is one cached response.
type centry struct {
	key  string
	gen  uint64
	body []byte
}

// NewCache returns an LRU holding at most capacity entries. A zero or
// negative capacity disables caching: Get always misses, Put is a
// no-op.
func NewCache(capacity int) *Cache {
	c := &Cache{capacity: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element, capacity)
	}
	return c
}

// Get returns the cached body for key if it was rendered at the given
// generation. An entry from an older generation is removed (counted as
// stale) and reported as a miss.
func (c *Cache) Get(key string, gen uint64) ([]byte, bool) {
	if c.capacity <= 0 {
		cacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		cacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*centry)
	if e.gen != gen {
		c.ll.Remove(el)
		delete(c.items, key)
		cacheStale.Inc()
		cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	cacheHits.Inc()
	return e.body, true
}

// Put stores a rendered body under key at the given generation,
// evicting the least-recently-used entry when full.
func (c *Cache) Put(key string, gen uint64, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		e.gen, e.body = gen, body
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*centry).key)
		cacheEvictions.Inc()
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, gen: gen, body: body})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
