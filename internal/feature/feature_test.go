package feature

import (
	"fmt"
	"testing"

	"webfountain/internal/stats"
)

func TestBBNPExtractsSentenceInitialDefiniteNP(t *testing.T) {
	e := NewExtractor(BBNP)
	cases := []struct {
		text string
		want []string
	}{
		{"The battery is excellent.", []string{"battery"}},
		{"The battery life is excellent.", []string{"battery life"}},
		{"The picture quality exceeded my expectations.", []string{"picture quality"}},
		{"The first movement is a haunting piece.", []string{"first movement"}},
		// Indefinite article: not a candidate.
		{"A battery is included.", nil},
		// Definite NP not at sentence start: not a candidate.
		{"I replaced the battery quickly.", nil},
		// No following verb phrase: not a candidate.
		{"The battery.", nil},
	}
	for _, c := range cases {
		got := e.Candidates(c.text)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Candidates(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestBBNPLongestPatternWins(t *testing.T) {
	e := NewExtractor(BBNP)
	got := e.Candidates("The optical zoom lens works flawlessly.")
	if len(got) != 1 || got[0] != "optical zoom lens" {
		t.Errorf("got %v, want [optical zoom lens]", got)
	}
}

func TestBBNPInterveningAdverb(t *testing.T) {
	e := NewExtractor(BBNP)
	got := e.Candidates("The viewfinder really shines.")
	if len(got) != 1 || got[0] != "viewfinder" {
		t.Errorf("got %v", got)
	}
}

func TestBBNPDedupPerDocument(t *testing.T) {
	e := NewExtractor(BBNP)
	got := e.Candidates("The battery drains. The battery dies.")
	if len(got) != 1 {
		t.Errorf("got %v, want one deduped candidate", got)
	}
}

func TestAllBNPFindsNonInitialPhrases(t *testing.T) {
	e := NewExtractor(AllBNP)
	got := e.Candidates("I replaced the battery and cleaned the lens.")
	want := map[string]bool{"battery": true, "lens": true}
	found := 0
	for _, g := range got {
		if want[g] {
			found++
		}
	}
	if found != 2 {
		t.Errorf("AllBNP got %v, want battery and lens", got)
	}
}

func TestAllBNPNoisierThanBBNP(t *testing.T) {
	text := "The battery life is great. I took many pictures at the beach near the old pier. Friends saw the results on my laptop screen."
	bbnp := NewExtractor(BBNP).Candidates(text)
	all := NewExtractor(AllBNP).Candidates(text)
	if len(all) <= len(bbnp) {
		t.Errorf("AllBNP (%d: %v) should out-produce bBNP (%d: %v)", len(all), all, len(bbnp), bbnp)
	}
}

func TestSelectorRanksCharacteristicTerms(t *testing.T) {
	// 20 on-topic docs mentioning "battery life", 2 also mention "weather";
	// 50 off-topic docs, "weather" in most, "battery life" in none.
	var on, off [][]string
	for i := 0; i < 20; i++ {
		c := []string{"battery life"}
		if i < 2 {
			c = append(c, "weather")
		}
		on = append(on, c)
	}
	for i := 0; i < 50; i++ {
		off = append(off, []string{"weather"})
	}
	sel := Selector{Confidence: 0.999}
	got := sel.Select(on, off)
	if len(got) != 1 || got[0].Term != "battery life" {
		t.Fatalf("Select = %+v, want only battery life", got)
	}
	if got[0].DocsOn != 20 || got[0].DocsOff != 0 {
		t.Errorf("doc freqs = %d/%d", got[0].DocsOn, got[0].DocsOff)
	}
	if got[0].Score < stats.ChiSquare1CriticalValues[0.999] {
		t.Errorf("score %v below threshold", got[0].Score)
	}
}

func TestSelectorTopN(t *testing.T) {
	on := [][]string{{"a", "b", "c"}, {"a", "b"}, {"a"}}
	off := [][]string{{}, {}, {}}
	got := Selector{}.TopN(on, off, 2)
	if len(got) != 2 {
		t.Fatalf("TopN = %+v", got)
	}
	if got[0].Term != "a" {
		t.Errorf("top term = %q, want a (most frequent)", got[0].Term)
	}
}

func TestSelectorDeterministicTieBreak(t *testing.T) {
	on := [][]string{{"zeta", "alpha"}, {"zeta", "alpha"}}
	off := [][]string{{}, {}}
	a := Selector{}.TopN(on, off, 2)
	b := Selector{}.TopN(on, off, 2)
	if a[0].Term != b[0].Term || a[0].Term != "alpha" {
		t.Errorf("tie break not deterministic/alphabetical: %v vs %v", a, b)
	}
}

func TestExtractAndSelectEndToEnd(t *testing.T) {
	onTopic := []string{
		"The battery life is excellent. The zoom works well.",
		"The battery life disappointed me. The menu is confusing.",
		"The zoom is responsive. The battery life lasts all day.",
		"The picture quality is superb. The zoom impressed me.",
		"The battery life is short. The picture quality is great.",
	}
	offTopic := []string{
		"The weather was nice today. We walked along the beach.",
		"The meeting ran long. The agenda was packed.",
		"The weather turned cold. The traffic was terrible.",
		"The election dominated the news. The weather stayed mild.",
	}
	got := ExtractAndSelect(NewExtractor(BBNP), onTopic, offTopic, 0.95)
	if len(got) == 0 {
		t.Fatal("no features selected")
	}
	terms := map[string]bool{}
	for _, st := range got {
		terms[st.Term] = true
	}
	for _, want := range []string{"battery life", "zoom"} {
		if !terms[want] {
			t.Errorf("missing expected feature %q in %v", want, got)
		}
	}
	if terms["weather"] {
		t.Error("off-topic term selected")
	}
}

func TestSelectEmptyCollections(t *testing.T) {
	if got := (Selector{}).Select(nil, nil); len(got) != 0 {
		t.Errorf("empty input should select nothing, got %v", got)
	}
}

func TestDBNPFindsDefiniteNPsAnywhere(t *testing.T) {
	e := NewExtractor(DBNP)
	got := e.Candidates("I replaced the battery and cleaned the zoom lens carefully.")
	want := map[string]bool{"battery": true, "zoom lens": true}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected candidate %q", g)
		}
		delete(want, g)
	}
	if len(want) != 0 {
		t.Errorf("missing candidates: %v (got %v)", want, got)
	}
	// Indefinite NPs stay out.
	if got := e.Candidates("I bought a battery yesterday."); len(got) != 0 {
		t.Errorf("indefinite leaked: %v", got)
	}
}

func TestHeuristicStrictnessOrdering(t *testing.T) {
	text := "The battery life is great. I cleaned the lens and a filter. Good shots happen at the beach."
	b := len(NewExtractor(BBNP).Candidates(text))
	d := len(NewExtractor(DBNP).Candidates(text))
	a := len(NewExtractor(AllBNP).Candidates(text))
	if !(b <= d && d <= a) {
		t.Errorf("strictness violated: bBNP=%d dBNP=%d all=%d", b, d, a)
	}
	if b == a {
		t.Errorf("heuristics indistinguishable on mixed text: %d", b)
	}
}

func TestMixtureSelectorRanksCharacteristicTerms(t *testing.T) {
	var on, off [][]string
	for i := 0; i < 30; i++ {
		c := []string{"battery life"}
		if i < 3 {
			c = append(c, "weather")
		}
		on = append(on, c)
	}
	for i := 0; i < 80; i++ {
		off = append(off, []string{"weather"})
	}
	got := MixtureSelector{}.Select(on, off)
	if len(got) == 0 || got[0].Term != "battery life" {
		t.Fatalf("Select = %+v", got)
	}
	for _, st := range got {
		if st.Term == "weather" {
			t.Errorf("background-dominated term selected: %+v", st)
		}
	}
}

func TestMixtureSelectorAgreesWithLLROnCorpus(t *testing.T) {
	// Both selectors should recover substantially the same feature set on
	// a clean separation (the companion paper found LLR slightly better;
	// here we assert strong overlap).
	onTopic := []string{
		"The battery life is excellent. The zoom works well.",
		"The battery life disappointed me. The menu is confusing.",
		"The zoom is responsive. The battery life lasts all day.",
		"The picture quality is superb. The zoom impressed me.",
		"The battery life is short. The menu is slow.",
		"The picture quality is great. The zoom hunts indoors.",
	}
	offTopic := []string{
		"The weather was nice. We walked along the shore.",
		"The meeting ran long. The agenda was packed.",
		"The weather turned cold. The traffic was terrible.",
		"The election dominated the news. The weather stayed mild.",
		"The forecast was wrong. The commute was slow.",
	}
	e := NewExtractor(BBNP)
	on := make([][]string, len(onTopic))
	for i, d := range onTopic {
		on[i] = e.Candidates(d)
	}
	off := make([][]string, len(offTopic))
	for i, d := range offTopic {
		off[i] = e.Candidates(d)
	}
	llr := Selector{Confidence: 0.95}.Select(on, off)
	mix := MixtureSelector{}.Select(on, off)
	llrSet := map[string]bool{}
	for _, st := range llr {
		llrSet[st.Term] = true
	}
	overlap := 0
	for _, st := range mix {
		if llrSet[st.Term] {
			overlap++
		}
	}
	if len(llr) == 0 || overlap < len(llr)/2 {
		t.Errorf("selectors disagree: llr=%v mix=%v", llr, mix)
	}
}

func TestMixtureSelectorEmpty(t *testing.T) {
	if got := (MixtureSelector{}).Select(nil, nil); got != nil {
		t.Errorf("got %v", got)
	}
}
