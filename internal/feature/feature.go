// Package feature implements the topic-feature term extractor: the bBNP
// (beginning definite Base Noun Phrase) candidate heuristic and the
// likelihood-ratio selection algorithm (the paper's bBNP-L combination,
// reported as its best performer).
//
// A feature term of a topic is a term in a part-of or attribute-of
// relationship with the topic (lens, battery, picture quality, ...). The
// bBNP heuristic extracts definite base noun phrases at the beginning of
// sentences followed by a verb phrase — "The battery life is..." — based
// on the observation that writers introduce a new feature with a definite
// noun phrase in sentence-initial position. Candidates are then ranked by
// Dunning's likelihood ratio over an on-topic collection D+ and an
// off-topic collection D-.
package feature

import (
	"sort"
	"strings"

	"webfountain/internal/pos"
	"webfountain/internal/stats"
	"webfountain/internal/tokenize"
)

// Heuristic selects the candidate extraction strategy.
type Heuristic int

const (
	// BBNP is the paper's best heuristic: definite base noun phrases at
	// sentence start followed by a verb phrase.
	BBNP Heuristic = iota
	// DBNP is the intermediate heuristic from the companion Sentiment
	// Analyzer paper: definite base noun phrases anywhere in the
	// sentence, regardless of position.
	DBNP
	// AllBNP is the loosest baseline: every base noun phrase anywhere,
	// regardless of definiteness or position.
	AllBNP
)

// Extractor extracts candidate feature terms from documents.
type Extractor struct {
	tagger    *pos.Tagger
	tokenizer *tokenize.Tokenizer
	heuristic Heuristic
}

// NewExtractor returns an extractor using the given heuristic.
func NewExtractor(h Heuristic) *Extractor {
	return &Extractor{
		tagger:    pos.NewTagger(),
		tokenizer: tokenize.New(),
		heuristic: h,
	}
}

// bnpPatterns are the paper's definite base noun phrase shapes, as POS tag
// sequences following the definite article: NN, NN NN, JJ NN, NN NN NN,
// JJ NN NN, JJ JJ NN.
var bnpPatterns = [][]pos.Tag{
	{pos.NN},
	{pos.NN, pos.NN},
	{pos.JJ, pos.NN},
	{pos.NN, pos.NN, pos.NN},
	{pos.JJ, pos.NN, pos.NN},
	{pos.JJ, pos.JJ, pos.NN},
}

// Candidates extracts the candidate feature terms of one document,
// lower-cased, with duplicates removed (document-level presence is what
// the selection algorithm counts).
func (e *Extractor) Candidates(text string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, sent := range e.tokenizer.Sentences(text) {
		tagged := e.tagger.TagSentence(sent)
		for _, cand := range e.sentenceCandidates(tagged) {
			if !seen[cand] {
				seen[cand] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

func (e *Extractor) sentenceCandidates(ts []pos.TaggedToken) []string {
	switch e.heuristic {
	case AllBNP:
		return allBNPs(ts)
	case DBNP:
		return definiteBNPs(ts)
	default:
		return beginningDefiniteBNP(ts)
	}
}

// definiteBNPs returns every base noun phrase directly preceded by the
// definite article, anywhere in the sentence.
func definiteBNPs(ts []pos.TaggedToken) []string {
	var out []string
	for i := 0; i < len(ts)-1; i++ {
		if !strings.EqualFold(ts[i].Text, "the") {
			continue
		}
		body := ts[i+1:]
		var best []pos.TaggedToken
		for _, pat := range bnpPatterns {
			if len(body) < len(pat) {
				continue
			}
			if !tagsMatch(body, pat) {
				continue
			}
			// Maximal: the noun run must end at the pattern boundary.
			if len(body) > len(pat) && body[len(pat)].Tag.IsNoun() {
				continue
			}
			if len(pat) > len(best) {
				best = body[:len(pat)]
			}
		}
		if best != nil {
			out = append(out, joinLower(best))
			i += len(best)
		}
	}
	return out
}

// beginningDefiniteBNP matches "The <bnp> <verb...>" at sentence start.
func beginningDefiniteBNP(ts []pos.TaggedToken) []string {
	if len(ts) < 3 {
		return nil
	}
	if !strings.EqualFold(ts[0].Text, "the") {
		return nil
	}
	body := ts[1:]
	var best []pos.TaggedToken
	for _, pat := range bnpPatterns {
		if len(body) < len(pat)+1 {
			continue
		}
		if !tagsMatch(body, pat) {
			continue
		}
		// Followed by a verb phrase (allow an intervening adverb).
		next := body[len(pat)]
		if next.Tag.IsVerb() || next.Tag == pos.MD ||
			(next.Tag.IsAdverb() && len(body) > len(pat)+1 &&
				(body[len(pat)+1].Tag.IsVerb() || body[len(pat)+1].Tag == pos.MD)) {
			if len(pat) > len(best) {
				best = body[:len(pat)]
			}
		}
	}
	if best == nil {
		return nil
	}
	return []string{joinLower(best)}
}

// allBNPs returns every base noun phrase in the sentence matching the bnp
// tag shapes, definite or not, anywhere.
func allBNPs(ts []pos.TaggedToken) []string {
	var out []string
	for i := 0; i < len(ts); i++ {
		var best []pos.TaggedToken
		for _, pat := range bnpPatterns {
			if i+len(pat) > len(ts) {
				continue
			}
			if !tagsMatch(ts[i:], pat) {
				continue
			}
			// Maximal match: the noun run must end here.
			if i+len(pat) < len(ts) && ts[i+len(pat)].Tag.IsNoun() {
				continue
			}
			// And must not start mid-noun-run.
			if i > 0 && (ts[i-1].Tag.IsNoun() || ts[i-1].Tag.IsAdjective()) {
				continue
			}
			if len(pat) > len(best) {
				best = ts[i : i+len(pat)]
			}
		}
		if best != nil {
			out = append(out, joinLower(best))
			i += len(best) - 1
		}
	}
	return out
}

func tagsMatch(ts []pos.TaggedToken, pat []pos.Tag) bool {
	for k, want := range pat {
		got := ts[k].Tag
		switch want {
		case pos.NN:
			if got != pos.NN && got != pos.NNS {
				return false
			}
		case pos.JJ:
			if !got.IsAdjective() {
				return false
			}
		default:
			if got != want {
				return false
			}
		}
	}
	return true
}

func joinLower(ts []pos.TaggedToken) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strings.ToLower(t.Text)
	}
	return strings.Join(parts, " ")
}

// ScoredTerm is a candidate with its likelihood-ratio score and document
// frequencies.
type ScoredTerm struct {
	Term string
	// Score is Dunning's -2 log lambda; higher means more characteristic
	// of the on-topic collection.
	Score float64
	// DocsOn and DocsOff are the number of on-/off-topic documents whose
	// candidate set contains the term.
	DocsOn, DocsOff int
}

// Selector ranks candidate feature terms by likelihood ratio.
type Selector struct {
	// Confidence is the chi-square confidence level for the acceptance
	// threshold (default 0.999 when zero).
	Confidence float64
}

// Select computes the likelihood-ratio score for every candidate seen in
// the on-topic candidate sets and returns terms above the confidence
// threshold, sorted by decreasing score (ties broken by on-topic document
// frequency, then alphabetically for determinism).
func (s Selector) Select(onTopic, offTopic [][]string) []ScoredTerm {
	conf := s.Confidence
	if conf == 0 {
		conf = 0.999
	}
	threshold, ok := stats.ChiSquare1CriticalValues[conf]
	if !ok {
		threshold = stats.ChiSquare1CriticalValues[0.999]
	}
	scored := s.scoreAll(onTopic, offTopic)
	out := scored[:0]
	for _, st := range scored {
		if st.Score >= threshold {
			out = append(out, st)
		}
	}
	return out
}

// TopN returns the N highest-scoring candidates regardless of threshold.
func (s Selector) TopN(onTopic, offTopic [][]string, n int) []ScoredTerm {
	scored := s.scoreAll(onTopic, offTopic)
	if len(scored) > n {
		scored = scored[:n]
	}
	return scored
}

func (s Selector) scoreAll(onTopic, offTopic [][]string) []ScoredTerm {
	dfOn := docFreq(onTopic)
	dfOff := docFreq(offTopic)
	nOn, nOff := float64(len(onTopic)), float64(len(offTopic))

	scored := make([]ScoredTerm, 0, len(dfOn))
	for term, c11 := range dfOn {
		c12 := dfOff[term]
		tab := stats.Contingency{
			C11: float64(c11),
			C12: float64(c12),
			C21: nOn - float64(c11),
			C22: nOff - float64(c12),
		}
		scored = append(scored, ScoredTerm{
			Term:    term,
			Score:   tab.LogLikelihoodRatio(),
			DocsOn:  c11,
			DocsOff: c12,
		})
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		if scored[i].DocsOn != scored[j].DocsOn {
			return scored[i].DocsOn > scored[j].DocsOn
		}
		return scored[i].Term < scored[j].Term
	})
	return scored
}

func docFreq(docs [][]string) map[string]int {
	df := make(map[string]int)
	for _, cands := range docs {
		seen := make(map[string]bool, len(cands))
		for _, c := range cands {
			if !seen[c] {
				seen[c] = true
				df[c]++
			}
		}
	}
	return df
}

// MixtureSelector is the companion paper's alternative selection
// algorithm (bBNP-M): candidate terms are scored by how much more
// probable they are under the on-topic collection's language model than
// under a mixture of the on-topic and background models. Terms whose
// on-topic probability is dominated by the background score near zero;
// topic-characteristic terms score high.
type MixtureSelector struct {
	// Lambda is the background interpolation weight (default 0.9): higher
	// values discount globally common terms harder.
	Lambda float64
	// MinScore is the acceptance threshold (default 1.0).
	MinScore float64
}

// Select scores candidates by the mixture-model criterion and returns
// those above MinScore, sorted by decreasing score.
func (ms MixtureSelector) Select(onTopic, offTopic [][]string) []ScoredTerm {
	lambda := ms.Lambda
	if lambda == 0 {
		lambda = 0.9
	}
	minScore := ms.MinScore
	if minScore == 0 {
		minScore = 1.0
	}
	dfOn := docFreq(onTopic)
	dfOff := docFreq(offTopic)
	nOn, nOff := float64(len(onTopic)), float64(len(offTopic))
	if nOn == 0 {
		return nil
	}

	var out []ScoredTerm
	for term, c11 := range dfOn {
		pOn := float64(c11) / nOn
		pBg := 0.0
		if nOff > 0 {
			pBg = float64(dfOff[term]) / nOff
		}
		// Score: how much of the term's mass the on-topic model explains
		// against the lambda-weighted background, scaled by evidence.
		denom := lambda*pBg + (1-lambda)*pOn
		if denom == 0 {
			denom = (1 - lambda) / nOn // unseen everywhere: minimal mass
		}
		score := pOn / denom * pOn * float64(c11)
		if score >= minScore {
			out = append(out, ScoredTerm{Term: term, Score: score, DocsOn: c11, DocsOff: dfOff[term]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].DocsOn != out[j].DocsOn {
			return out[i].DocsOn > out[j].DocsOn
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// ExtractAndSelect is the full bBNP-L pipeline: extract candidates from
// both collections with the extractor's heuristic and select by likelihood
// ratio at the given confidence (0 = default 0.999).
func ExtractAndSelect(e *Extractor, onTopic, offTopic []string, confidence float64) []ScoredTerm {
	on := make([][]string, len(onTopic))
	for i, d := range onTopic {
		on[i] = e.Candidates(d)
	}
	off := make([][]string, len(offTopic))
	for i, d := range offTopic {
		off[i] = e.Candidates(d)
	}
	return Selector{Confidence: confidence}.Select(on, off)
}
