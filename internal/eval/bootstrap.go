package eval

import (
	"math/rand"
	"sort"

	"webfountain/internal/corpus"
	"webfountain/internal/lexicon"
	"webfountain/internal/sentiment"
)

// Outcome is one case's (gold, predicted) pair, the unit the bootstrap
// resamples.
type Outcome struct {
	Gold, Pred lexicon.Polarity
}

// SentimentOutcomes evaluates the miner and returns the per-case outcomes
// (the same predictions EvalSentimentMiner aggregates).
func (r *Runner) SentimentOutcomes(docs []corpus.Document, cases []Case) []Outcome {
	type analysis struct {
		assignments []sentiment.Assignment
	}
	cache := map[sentenceKey]analysis{}
	out := make([]Outcome, 0, len(cases))
	for _, c := range cases {
		key := sentenceKey{c.Doc, c.SentIdx}
		a, ok := cache[key]
		if !ok {
			tagged := r.tagger.Tag(r.tk.Tokenize(docs[c.Doc].Sentences[c.SentIdx].Text))
			a = analysis{assignments: r.analyzer.Analyze(tagged)}
			cache[key] = a
		}
		hits := sentiment.ForSpan(a.assignments, c.SpotStart, c.SpotEnd)
		out = append(out, Outcome{Gold: c.Gold, Pred: sentiment.Net(hits)})
	}
	return out
}

// MetricsOf aggregates outcomes into Metrics.
func MetricsOf(outcomes []Outcome) Metrics {
	var m Metrics
	for _, o := range outcomes {
		m.Add(o.Gold, o.Pred)
	}
	return m
}

// BootstrapCI computes a percentile bootstrap confidence interval for a
// metric over the outcomes: iters resamples with replacement, returning
// the (alpha/2, 1-alpha/2) percentiles. Deterministic for a given seed.
func BootstrapCI(outcomes []Outcome, metric func(Metrics) float64, iters int, alpha float64, seed int64) (lo, hi float64) {
	if len(outcomes) == 0 || iters <= 0 {
		return 0, 0
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	r := rand.New(rand.NewSource(seed))
	values := make([]float64, iters)
	for it := 0; it < iters; it++ {
		var m Metrics
		for k := 0; k < len(outcomes); k++ {
			o := outcomes[r.Intn(len(outcomes))]
			m.Add(o.Gold, o.Pred)
		}
		values[it] = metric(m)
	}
	sort.Float64s(values)
	loIdx := int(alpha / 2 * float64(iters))
	hiIdx := int((1 - alpha/2) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return values[loIdx], values[hiIdx]
}

// Convenience metric accessors for BootstrapCI.
var (
	// PrecisionMetric extracts precision.
	PrecisionMetric = func(m Metrics) float64 { return m.Precision() }
	// RecallMetric extracts recall.
	RecallMetric = func(m Metrics) float64 { return m.Recall() }
	// AccuracyMetric extracts accuracy.
	AccuracyMetric = func(m Metrics) float64 { return m.Accuracy() }
)
