package eval

import (
	"fmt"
	"sort"

	"webfountain/internal/baselines"
	"webfountain/internal/corpus"
	"webfountain/internal/feature"
	"webfountain/internal/lexicon"
	"webfountain/internal/pos"
	"webfountain/internal/sentiment"
	"webfountain/internal/spotter"
	"webfountain/internal/tokenize"
)

// Sizes mirror the paper's dataset sizes (Section 4.1). Experiments can
// scale them down for fast runs.
const (
	PaperCameraDocs     = 485
	PaperCameraOffTopic = 1838
	PaperMusicDocs      = 250
	PaperMusicOffTopic  = 2389
	DefaultWebDocs      = 300
	DefaultNewsDocs     = 200
	DefaultSeed         = 20050405 // ICDE 2005 vintage
)

// Runner bundles the NLP stack shared by the experiments.
type Runner struct {
	tagger   *pos.Tagger
	tk       *tokenize.Tokenizer
	analyzer *sentiment.Analyzer
	colloc   *baselines.Collocation
}

// NewRunner builds a Runner with the embedded resources. A nil analyzer
// option selects the default full algorithm.
func NewRunner(analyzer *sentiment.Analyzer) *Runner {
	if analyzer == nil {
		analyzer = sentiment.New(nil, nil)
	}
	return &Runner{
		tagger:   pos.NewTagger(),
		tk:       tokenize.New(),
		analyzer: analyzer,
		colloc:   baselines.NewCollocation(analyzer.Lexicon()),
	}
}

// sentenceKey caches per-sentence analysis across cases.
type sentenceKey struct{ doc, sent int }

// EvalSentimentMiner scores the sentiment miner over the cases.
func (r *Runner) EvalSentimentMiner(docs []corpus.Document, cases []Case) Metrics {
	var m Metrics
	type analysis struct {
		tagged      []pos.TaggedToken
		assignments []sentiment.Assignment
	}
	cache := map[sentenceKey]analysis{}
	for _, c := range cases {
		key := sentenceKey{c.Doc, c.SentIdx}
		a, ok := cache[key]
		if !ok {
			tagged := r.tagger.Tag(r.tk.Tokenize(docs[c.Doc].Sentences[c.SentIdx].Text))
			a = analysis{tagged: tagged, assignments: r.analyzer.Analyze(tagged)}
			cache[key] = a
		}
		hits := sentiment.ForSpan(a.assignments, c.SpotStart, c.SpotEnd)
		m.Add(c.Gold, sentiment.Net(hits))
	}
	return m
}

// EvalSentimentMinerWindowed scores the miner with a sentiment context of
// `window` sentences on each side of each spot (the paper's context
// window formation rule; 0 reproduces EvalSentimentMiner's behaviour of
// analyzing the spot sentence alone).
func (r *Runner) EvalSentimentMinerWindowed(docs []corpus.Document, cases []Case, window int) Metrics {
	var m Metrics
	tk := tokenize.New()
	sentCache := map[int][]tokenize.Sentence{}
	for _, c := range cases {
		sents, ok := sentCache[c.Doc]
		if !ok {
			sents = tk.Sentences(docs[c.Doc].Text())
			sentCache[c.Doc] = sents
		}
		if c.SentIdx >= len(sents) {
			m.Add(c.Gold, lexicon.Neutral)
			continue
		}
		ctx := sentiment.BuildContext(sents, c.SentIdx, window, c.SpotStart, c.SpotEnd)
		hits, ok := r.analyzer.SubjectSentiment(r.tagger, ctx)
		if !ok {
			m.Add(c.Gold, lexicon.Neutral)
			continue
		}
		m.Add(c.Gold, sentiment.Net(hits))
	}
	return m
}

// EvalCollocation scores the collocation baseline over the cases.
func (r *Runner) EvalCollocation(docs []corpus.Document, cases []Case) Metrics {
	var m Metrics
	cache := map[sentenceKey][]pos.TaggedToken{}
	for _, c := range cases {
		key := sentenceKey{c.Doc, c.SentIdx}
		tagged, ok := cache[key]
		if !ok {
			tagged = r.tagger.Tag(r.tk.Tokenize(docs[c.Doc].Sentences[c.SentIdx].Text))
			cache[key] = tagged
		}
		pred := r.colloc.Classify(tagged, c.SpotStart, c.SpotEnd)
		m.Add(c.Gold, pred)
	}
	return m
}

// EvalReviewSeerSentences scores the statistical classifier per sentence,
// the protocol the paper applies on general web documents. When
// excludeIClass is true only clearly polar, on-target cases are kept (the
// paper's "accuracy w/o I class").
func (r *Runner) EvalReviewSeerSentences(nb *baselines.NaiveBayes, docs []corpus.Document, cases []Case, excludeIClass bool) Metrics {
	var m Metrics
	for _, c := range cases {
		if excludeIClass && (c.Gold == lexicon.Neutral || !c.Detectable) {
			continue
		}
		pred, _ := nb.Classify(docs[c.Doc].Sentences[c.SentIdx].Text)
		m.Add(c.Gold, pred)
	}
	return m
}

// EvalReviewSeerDocuments scores the classifier at document level on
// review verdicts (its home turf).
func EvalReviewSeerDocuments(nb *baselines.NaiveBayes, docs []corpus.Document) Metrics {
	var m Metrics
	for i := range docs {
		pred, _ := nb.Classify(docs[i].Text())
		m.Add(docs[i].DocLabel, pred)
	}
	return m
}

// TrainReviewSeer trains the statistical baseline on review documents.
func TrainReviewSeer(docs []corpus.Document) *baselines.NaiveBayes {
	nb := baselines.NewNaiveBayes()
	for i := range docs {
		nb.Train(docs[i].Text(), docs[i].DocLabel)
	}
	return nb
}

// --- Table 4: product review datasets ---

// Table4Row is one system's row in Table 4.
type Table4Row struct {
	System    string
	Precision float64
	Recall    float64
	Accuracy  float64
	Cases     int
}

// Table4Result reproduces Table 4.
type Table4Result struct {
	Rows []Table4Row
	// ReviewTestDocs is the held-out review count for the classifier row.
	ReviewTestDocs int
}

// Table4 runs the review-dataset comparison: the sentiment miner and the
// collocation baseline at (sentence, subject) level over the camera and
// music review corpora, and the ReviewSeer-style classifier at document
// level (as the original system was evaluated), trained on a held-out
// split.
func Table4(seed int64, cameraDocs, musicDocs int) Table4Result {
	r := NewRunner(nil)

	camera := corpus.DigitalCameraReviews(seed, cameraDocs)
	music := corpus.MusicReviews(seed+1, musicDocs)

	camSubjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	musSubjects := append(append([]string{}, corpus.MusicAlbums...), corpus.MusicFeatures...)

	camCases := Cases(camera, camSubjects)
	musCases := Cases(music, musSubjects)

	var sm, col Metrics
	for _, part := range []struct {
		docs  []corpus.Document
		cases []Case
	}{{camera, camCases}, {music, musCases}} {
		s := r.EvalSentimentMiner(part.docs, part.cases)
		c := r.EvalCollocation(part.docs, part.cases)
		sm = merge(sm, s)
		col = merge(col, c)
	}

	// ReviewSeer: 70/30 train/test split within each domain at doc level,
	// so both train and test cover both review domains (the original
	// system was trained on in-domain review data).
	var train, test []corpus.Document
	for _, part := range [][]corpus.Document{camera, music} {
		cut := len(part) * 7 / 10
		train = append(train, part[:cut]...)
		test = append(test, part[cut:]...)
	}
	nb := TrainReviewSeer(train)
	rs := EvalReviewSeerDocuments(nb, test)

	return Table4Result{
		Rows: []Table4Row{
			{System: "SM", Precision: sm.Precision(), Recall: sm.Recall(), Accuracy: sm.Accuracy(), Cases: sm.Total},
			{System: "Collocation", Precision: col.Precision(), Recall: col.Recall(), Accuracy: col.Accuracy(), Cases: col.Total},
			{System: "ReviewSeer", Precision: rs.Precision(), Recall: rs.Recall(), Accuracy: rs.Accuracy(), Cases: rs.Total},
		},
		ReviewTestDocs: len(test),
	}
}

func merge(a, b Metrics) Metrics {
	return Metrics{
		CorrectPolar:   a.CorrectPolar + b.CorrectPolar,
		PredictedPolar: a.PredictedPolar + b.PredictedPolar,
		GoldPolar:      a.GoldPolar + b.GoldPolar,
		Correct:        a.Correct + b.Correct,
		Total:          a.Total + b.Total,
	}
}

// --- Table 5: general web documents and news articles ---

// Table5Row is one (system, corpus) row of Table 5.
type Table5Row struct {
	System    string
	Corpus    string
	Precision float64
	Accuracy  float64
	// AccuracyNoIClass is only set for the ReviewSeer row, mirroring the
	// paper's 68% column.
	AccuracyNoIClass float64
	Cases            int
}

// Table5 reproduces Table 5: the sentiment miner on petroleum-web,
// pharma-web and petroleum-news corpora, and the review-trained
// statistical classifier collapsing on the web corpus.
func Table5(seed int64, webDocs, newsDocs int) []Table5Row {
	r := NewRunner(nil)

	petro := corpus.PetroleumWeb(seed+10, webDocs)
	pharma := corpus.PharmaWeb(seed+11, webDocs)
	news := corpus.PetroleumNews(seed+12, newsDocs)

	var rows []Table5Row
	evalCorpus := func(name string, docs []corpus.Document, subjects []string) []Case {
		cases := Cases(docs, subjects)
		m := r.EvalSentimentMiner(docs, cases)
		rows = append(rows, Table5Row{
			System: "SM", Corpus: name,
			Precision: m.Precision(), Accuracy: m.Accuracy(), Cases: m.Total,
		})
		return cases
	}

	petroCases := evalCorpus("Petroleum, Web", petro, corpus.PetroleumCompanies)
	evalCorpus("Pharmaceutical, Web", pharma, corpus.PharmaCompanies)
	evalCorpus("Petroleum, News", news, corpus.PetroleumCompanies)

	// ReviewSeer trained on reviews, applied per sentence on the
	// petroleum web corpus (the paper's "Web" row).
	training := append(
		corpus.DigitalCameraReviews(seed, PaperCameraDocs/2),
		corpus.MusicReviews(seed+1, PaperMusicDocs/2)...)
	nb := TrainReviewSeer(training)
	all := r.EvalReviewSeerSentences(nb, petro, petroCases, false)
	noI := r.EvalReviewSeerSentences(nb, petro, petroCases, true)
	rows = append(rows, Table5Row{
		System: "ReviewSeer", Corpus: "Web",
		Precision: all.Precision(), Accuracy: all.Accuracy(),
		AccuracyNoIClass: noI.Accuracy(), Cases: all.Total,
	})
	return rows
}

// --- Feature extraction experiments (Table 2 and the 97%/100% precision) ---

// FeatureResult is the outcome of the bBNP-L pipeline on one domain.
type FeatureResult struct {
	Domain string
	// Top are the selected feature terms in rank order.
	Top []feature.ScoredTerm
	// Precision is the share of selected terms present in the domain's
	// gold feature list (standing in for the paper's two human judges).
	Precision float64
	Selected  int
}

// FeatureExtraction runs the bBNP-L pipeline for a domain. heuristic
// selects bBNP (the paper's) or AllBNP (the ablation).
func FeatureExtraction(domain string, seed int64, onDocs, offDocs int, h feature.Heuristic) FeatureResult {
	var on []corpus.Document
	var gold []string
	switch domain {
	case "music":
		on = corpus.MusicReviews(seed+1, onDocs)
		gold = corpus.MusicFeatures
	default:
		domain = "camera"
		on = corpus.DigitalCameraReviews(seed, onDocs)
		gold = corpus.CameraFeatures
	}
	off := corpus.Distractors(seed+2, offDocs)

	onTexts := make([]string, len(on))
	for i := range on {
		onTexts[i] = on[i].Text()
	}
	offTexts := make([]string, len(off))
	for i := range off {
		offTexts[i] = off[i].Text()
	}
	selected := feature.ExtractAndSelect(feature.NewExtractor(h), onTexts, offTexts, 0.999)

	goldSet := map[string]bool{}
	for _, g := range gold {
		goldSet[g] = true
	}
	correct := 0
	for _, st := range selected {
		if goldSet[st.Term] {
			correct++
		}
	}
	prec := 0.0
	if len(selected) > 0 {
		prec = float64(correct) / float64(len(selected))
	}
	top := selected
	if len(top) > 20 {
		top = top[:20]
	}
	return FeatureResult{Domain: domain, Top: top, Precision: prec, Selected: len(selected)}
}

// --- Table 3: product vs. feature reference counts ---

// ReferenceCount is one row of Table 3.
type ReferenceCount struct {
	Term  string
	Count int
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Products     []ReferenceCount
	Features     []ReferenceCount
	ProductTotal int
	FeatureTotal int
	NumProducts  int
	NumFeatures  int
}

// Ratio returns feature references per product reference.
func (t Table3Result) Ratio() float64 {
	if t.ProductTotal == 0 {
		return 0
	}
	return float64(t.FeatureTotal) / float64(t.ProductTotal)
}

// Table3 counts product-name and feature-term references in the camera
// review corpus with the spotter, exactly as the production pipeline
// counts spots.
func Table3(seed int64, docs int) Table3Result {
	camera := corpus.DigitalCameraReviews(seed, docs)
	tk := tokenize.New()

	prodSpotter := spotter.New(corpus.SynonymSets(corpus.CameraProducts))
	featSpotter := spotter.New(corpus.SynonymSets(corpus.CameraFeatures))

	prodCounts := map[string]int{}
	featCounts := map[string]int{}
	for i := range camera {
		toks := tk.Tokenize(camera[i].Text())
		for id, n := range spotter.CountBySet(prodSpotter.SpotTokens(toks)) {
			prodCounts[id] += n
		}
		for id, n := range spotter.CountBySet(featSpotter.SpotTokens(toks)) {
			featCounts[id] += n
		}
	}
	res := Table3Result{NumProducts: len(prodCounts), NumFeatures: len(featCounts)}
	res.Products, res.ProductTotal = ranked(prodCounts)
	res.Features, res.FeatureTotal = ranked(featCounts)
	return res
}

func ranked(counts map[string]int) ([]ReferenceCount, int) {
	out := make([]ReferenceCount, 0, len(counts))
	total := 0
	for term, n := range counts {
		out = append(out, ReferenceCount{Term: term, Count: n})
		total += n
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out, total
}

// --- Figure 2 inset: customer satisfaction by product and feature ---

// SatisfactionCell is one bar of the chart: the share of pages about a
// product whose sentiment toward a feature is positive.
type SatisfactionCell struct {
	Product  string
	Feature  string
	Positive int
	Negative int
}

// Share returns the percentage of positive pages.
func (c SatisfactionCell) Share() float64 {
	if c.Positive+c.Negative == 0 {
		return 0
	}
	return 100 * float64(c.Positive) / float64(c.Positive+c.Negative)
}

// Satisfaction reproduces the Figure 2 inset chart over the first
// nProducts products and the given features.
func Satisfaction(seed int64, docs, nProducts int, features []string) []SatisfactionCell {
	r := NewRunner(nil)
	camera := corpus.DigitalCameraReviews(seed, docs)
	products := corpus.CameraProducts
	if nProducts < len(products) {
		products = products[:nProducts]
	}

	cases := Cases(camera, features)
	// Per (doc, feature) net sentiment.
	type key struct {
		doc     int
		feature string
	}
	net := map[key]int{}
	type analysis struct{ assignments []sentiment.Assignment }
	cache := map[sentenceKey]analysis{}
	for _, c := range cases {
		k := sentenceKey{c.Doc, c.SentIdx}
		a, ok := cache[k]
		if !ok {
			tagged := r.tagger.Tag(r.tk.Tokenize(camera[c.Doc].Sentences[c.SentIdx].Text))
			a = analysis{assignments: r.analyzer.Analyze(tagged)}
			cache[k] = a
		}
		hits := sentiment.ForSpan(a.assignments, c.SpotStart, c.SpotEnd)
		net[key{c.Doc, c.Subject}] += int(sentiment.Net(hits))
	}

	// Product of each page from its title.
	pageProduct := make([]string, len(camera))
	for i := range camera {
		for _, p := range products {
			if containsWord(camera[i].Title, p) {
				pageProduct[i] = p
			}
		}
	}

	cells := map[string]*SatisfactionCell{}
	for k, v := range net {
		p := pageProduct[k.doc]
		if p == "" || v == 0 {
			continue
		}
		ck := p + "\x00" + k.feature
		cell, ok := cells[ck]
		if !ok {
			cell = &SatisfactionCell{Product: p, Feature: k.feature}
			cells[ck] = cell
		}
		if v > 0 {
			cell.Positive++
		} else {
			cell.Negative++
		}
	}
	out := make([]SatisfactionCell, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Product != out[j].Product {
			return out[i].Product < out[j].Product
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

func containsWord(s, w string) bool {
	idx := 0
	for {
		j := indexFrom(s, w, idx)
		if j < 0 {
			return false
		}
		before := j == 0 || s[j-1] == ' '
		after := j+len(w) == len(s) || s[j+len(w)] == ' ' || s[j+len(w)] == '.'
		if before && after {
			return true
		}
		idx = j + 1
	}
}

func indexFrom(s, sub string, from int) int {
	if from >= len(s) {
		return -1
	}
	for i := from; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// FormatPercent renders a ratio as a percentage string.
func FormatPercent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
