package eval

import (
	"testing"

	"webfountain/internal/corpus"
	"webfountain/internal/feature"
	"webfountain/internal/lexicon"
	"webfountain/internal/sentiment"
)

// Moderate corpus sizes keep the test suite fast; the cmd/experiments
// binary and the benchmarks run the paper-scale versions.
const (
	testCameraDocs = 120
	testMusicDocs  = 60
	testWebDocs    = 80
	testNewsDocs   = 60
	testOffTopic   = 300
)

func TestMetricsArithmetic(t *testing.T) {
	var m Metrics
	m.Add(lexicon.Positive, lexicon.Positive) // correct polar
	m.Add(lexicon.Negative, lexicon.Positive) // wrong polarity
	m.Add(lexicon.Neutral, lexicon.Neutral)   // correct neutral
	m.Add(lexicon.Positive, lexicon.Neutral)  // miss
	m.Add(lexicon.Neutral, lexicon.Negative)  // false positive
	if m.Total != 5 || m.GoldPolar != 3 || m.PredictedPolar != 3 || m.CorrectPolar != 1 || m.Correct != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if p := m.Precision(); p < 0.33 || p > 0.34 {
		t.Errorf("precision = %v", p)
	}
	if r := m.Recall(); r < 0.33 || r > 0.34 {
		t.Errorf("recall = %v", r)
	}
	if a := m.Accuracy(); a != 0.4 {
		t.Errorf("accuracy = %v", a)
	}
	var empty Metrics
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.Accuracy() != 0 {
		t.Error("empty metrics should be all zeros")
	}
}

func TestCasesBuildsMaximalSpotsWithGold(t *testing.T) {
	docs := corpus.DigitalCameraReviews(DefaultSeed, 5)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := Cases(docs, subjects)
	if len(cases) == 0 {
		t.Fatal("no cases built")
	}
	// No nested duplicates: "image quality" must shadow "image"/"quality"
	// at the same span.
	for _, c := range cases {
		if c.SpotStart < 0 || c.SpotEnd <= c.SpotStart {
			t.Fatalf("bad span: %+v", c)
		}
	}
	// Every detectable case must be gold-polar.
	for _, c := range cases {
		if c.Detectable && c.Gold == lexicon.Neutral {
			t.Errorf("detectable neutral case: %+v", c)
		}
	}
}

// TestTable4Shape asserts the paper's Table 4 shape criteria from
// DESIGN.md on a reduced corpus.
func TestTable4Shape(t *testing.T) {
	res := Table4(DefaultSeed, testCameraDocs, testMusicDocs)
	rows := map[string]Table4Row{}
	for _, r := range res.Rows {
		rows[r.System] = r
	}
	sm, col, rs := rows["SM"], rows["Collocation"], rows["ReviewSeer"]

	// Paper: SM 87/56/85.6.
	if sm.Precision < 0.80 || sm.Precision > 0.93 {
		t.Errorf("SM precision = %.3f, want ~0.87", sm.Precision)
	}
	if sm.Recall < 0.48 || sm.Recall > 0.68 {
		t.Errorf("SM recall = %.3f, want ~0.56", sm.Recall)
	}
	if sm.Accuracy < 0.80 || sm.Accuracy > 0.93 {
		t.Errorf("SM accuracy = %.3f, want ~0.856", sm.Accuracy)
	}

	// Shape 1: SM precision >= 3x collocation precision (paper: 87 vs 18).
	if sm.Precision < 3*col.Precision {
		t.Errorf("SM precision %.3f should be >= 3x collocation %.3f", sm.Precision, col.Precision)
	}
	// Shape 2: collocation recall exceeds SM recall (paper: 70 vs 56).
	if col.Recall <= sm.Recall {
		t.Errorf("collocation recall %.3f should exceed SM recall %.3f", col.Recall, sm.Recall)
	}
	// Shape 3: ReviewSeer's document accuracy within a few points of SM
	// accuracy (paper: 88.4 vs 85.6).
	if rs.Accuracy < sm.Accuracy-0.15 || rs.Accuracy > sm.Accuracy+0.15 {
		t.Errorf("ReviewSeer accuracy %.3f should be near SM accuracy %.3f", rs.Accuracy, sm.Accuracy)
	}
	if res.ReviewTestDocs <= 0 {
		t.Error("no held-out review docs")
	}
}

// TestTable5Shape asserts the headline crossover: the miner holds on
// general web/news text while the statistical classifier collapses.
func TestTable5Shape(t *testing.T) {
	rows := Table5(DefaultSeed, testWebDocs, testNewsDocs)
	var smRows []Table5Row
	var rs Table5Row
	for _, r := range rows {
		if r.System == "SM" {
			smRows = append(smRows, r)
		} else {
			rs = r
		}
	}
	if len(smRows) != 3 {
		t.Fatalf("want 3 SM rows, got %d", len(smRows))
	}
	for _, r := range smRows {
		// Paper: precision 86-91%, accuracy 90-93%.
		if r.Precision < 0.84 {
			t.Errorf("%s: SM precision %.3f below the paper band", r.Corpus, r.Precision)
		}
		if r.Accuracy < 0.86 {
			t.Errorf("%s: SM accuracy %.3f below the paper band", r.Corpus, r.Accuracy)
		}
		// Shape 4: SM beats ReviewSeer accuracy by > 2x (paper: 90+ vs 38).
		if r.Accuracy < 2*rs.Accuracy {
			t.Errorf("%s: SM accuracy %.3f not > 2x ReviewSeer %.3f", r.Corpus, r.Accuracy, rs.Accuracy)
		}
	}
	// ReviewSeer improves without the I class (paper: 38 -> 68).
	if rs.AccuracyNoIClass <= rs.Accuracy {
		t.Errorf("ReviewSeer no-I accuracy %.3f should exceed overall %.3f", rs.AccuracyNoIClass, rs.Accuracy)
	}
}

// TestFeatureExtractionPrecision asserts the bBNP-L precision targets
// (paper: 97% camera, 100% music).
func TestFeatureExtractionPrecision(t *testing.T) {
	for _, dom := range []string{"camera", "music"} {
		res := FeatureExtraction(dom, DefaultSeed, testCameraDocs, testOffTopic, feature.BBNP)
		if res.Precision < 0.95 {
			t.Errorf("%s: bBNP-L precision = %.3f, want >= 0.95 (selected %d)", dom, res.Precision, res.Selected)
		}
		if res.Selected < 15 {
			t.Errorf("%s: only %d features selected", dom, res.Selected)
		}
		if len(res.Top) == 0 || res.Top[0].Score <= 0 {
			t.Errorf("%s: top features not ranked: %+v", dom, res.Top)
		}
	}
}

// TestFeatureExtractionAblation: the AllBNP heuristic must be noisier than
// bBNP (the design choice the paper motivates).
func TestFeatureExtractionAblation(t *testing.T) {
	bbnp := FeatureExtraction("camera", DefaultSeed, testCameraDocs, testOffTopic, feature.BBNP)
	all := FeatureExtraction("camera", DefaultSeed, testCameraDocs, testOffTopic, feature.AllBNP)
	if all.Precision >= bbnp.Precision {
		t.Errorf("AllBNP precision %.3f should fall below bBNP %.3f", all.Precision, bbnp.Precision)
	}
}

// TestTable3Shape: feature terms are referenced roughly an order of
// magnitude more often than product names (paper: 12.4x).
func TestTable3Shape(t *testing.T) {
	res := Table3(DefaultSeed, testCameraDocs)
	if res.Ratio() < 6 {
		t.Errorf("feature/product ratio = %.1f, want >= 6", res.Ratio())
	}
	if res.NumProducts == 0 || res.NumFeatures == 0 {
		t.Fatalf("empty table: %+v", res)
	}
	if res.Products[0].Count < res.Products[len(res.Products)-1].Count {
		t.Error("products not ranked")
	}
}

// TestSatisfactionChart: the Figure 2 inset chart has per-product,
// per-feature structure.
func TestSatisfactionChart(t *testing.T) {
	cells := Satisfaction(DefaultSeed, testCameraDocs, 7, []string{"picture quality", "battery", "flash"})
	if len(cells) < 6 {
		t.Fatalf("too few cells: %d", len(cells))
	}
	seenShare := map[int]bool{}
	for _, c := range cells {
		if c.Share() < 0 || c.Share() > 100 {
			t.Errorf("share out of range: %+v", c)
		}
		seenShare[int(c.Share()/10)] = true
	}
	if len(seenShare) < 2 {
		t.Error("satisfaction shares show no structure")
	}
}

// TestAblationNegation: disabling negation handling must hurt review
// precision (the design choice DESIGN.md calls out).
func TestAblationNegation(t *testing.T) {
	docs := corpus.DigitalCameraReviews(DefaultSeed, testCameraDocs)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := Cases(docs, subjects)

	full := NewRunner(nil).EvalSentimentMiner(docs, cases)
	ablated := NewRunner(sentiment.NewWithOptions(nil, nil, sentiment.Options{DisableNegation: true})).
		EvalSentimentMiner(docs, cases)
	if ablated.Precision() >= full.Precision() {
		t.Errorf("negation ablation should reduce precision: %.3f vs %.3f",
			ablated.Precision(), full.Precision())
	}
}

// TestAblationTransVerbs: disabling trans-verb transfer must crush recall.
func TestAblationTransVerbs(t *testing.T) {
	docs := corpus.DigitalCameraReviews(DefaultSeed, testCameraDocs)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := Cases(docs, subjects)

	full := NewRunner(nil).EvalSentimentMiner(docs, cases)
	ablated := NewRunner(sentiment.NewWithOptions(nil, nil, sentiment.Options{DisableTransVerbs: true})).
		EvalSentimentMiner(docs, cases)
	if ablated.Recall() >= full.Recall()*0.8 {
		t.Errorf("trans-verb ablation should crush recall: %.3f vs %.3f",
			ablated.Recall(), full.Recall())
	}
}

func TestEvalDeterminism(t *testing.T) {
	a := Table4(DefaultSeed, 30, 20)
	b := Table4(DefaultSeed, 30, 20)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestWindowedEvalMatchesBaselineAtZero: window 0 must reproduce the
// sentence-only evaluation.
func TestWindowedEvalMatchesBaselineAtZero(t *testing.T) {
	docs := corpus.DigitalCameraReviews(DefaultSeed, 25)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := Cases(docs, subjects)
	r := NewRunner(nil)
	base := r.EvalSentimentMiner(docs, cases)
	w0 := r.EvalSentimentMinerWindowed(docs, cases, 0)
	if base != w0 {
		t.Errorf("window 0 diverges: %+v vs %+v", base, w0)
	}
	// A wider window changes behaviour only via the fallback; it must not
	// crash and must keep precision in a sane band.
	w1 := r.EvalSentimentMinerWindowed(docs, cases, 1)
	if w1.Total != base.Total {
		t.Errorf("case counts differ: %d vs %d", w1.Total, base.Total)
	}
}

// TestBootstrapCI: the interval must bracket the point estimate, be
// deterministic for a seed, and tighten with more data.
func TestBootstrapCI(t *testing.T) {
	docs := corpus.DigitalCameraReviews(DefaultSeed, 60)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := Cases(docs, subjects)
	r := NewRunner(nil)
	outcomes := r.SentimentOutcomes(docs, cases)

	point := MetricsOf(outcomes).Precision()
	lo, hi := BootstrapCI(outcomes, PrecisionMetric, 200, 0.05, 42)
	if !(lo <= point && point <= hi) {
		t.Errorf("CI [%.3f, %.3f] does not bracket %.3f", lo, hi, point)
	}
	if hi-lo <= 0 || hi-lo > 0.2 {
		t.Errorf("implausible CI width %.3f", hi-lo)
	}
	lo2, hi2 := BootstrapCI(outcomes, PrecisionMetric, 200, 0.05, 42)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic for fixed seed")
	}
	// Half the data gives a wider (or equal) interval.
	loHalf, hiHalf := BootstrapCI(outcomes[:len(outcomes)/2], PrecisionMetric, 200, 0.05, 42)
	if (hiHalf - loHalf) < (hi-lo)*0.8 {
		t.Errorf("smaller sample should not yield a much tighter CI: %.4f vs %.4f", hiHalf-loHalf, hi-lo)
	}
	// Aggregation must match the direct evaluator.
	if MetricsOf(outcomes) != r.EvalSentimentMiner(docs, cases) {
		t.Error("outcome aggregation diverges from EvalSentimentMiner")
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	if lo, hi := BootstrapCI(nil, AccuracyMetric, 100, 0.05, 1); lo != 0 || hi != 0 {
		t.Error("empty outcomes should give zero interval")
	}
	outcomes := []Outcome{{Gold: lexicon.Positive, Pred: lexicon.Positive}}
	lo, hi := BootstrapCI(outcomes, AccuracyMetric, 50, -1, 1) // bad alpha -> default
	if lo != 1 || hi != 1 {
		t.Errorf("degenerate sample CI = [%v, %v]", lo, hi)
	}
}

// TestMinerOnBulletinBoard: the miner must keep high precision on short,
// noisy, lower-cased posts (the bulletin-board/NNTP channel the platform
// ingests).
func TestMinerOnBulletinBoard(t *testing.T) {
	docs := corpus.BulletinBoard(11, 200)
	cases := Cases(docs, corpus.CameraProducts)
	if len(cases) < 150 {
		t.Fatalf("only %d cases spotted", len(cases))
	}
	m := NewRunner(nil).EvalSentimentMiner(docs, cases)
	if m.Precision() < 0.85 {
		t.Errorf("bboard precision = %.3f", m.Precision())
	}
	if m.Recall() < 0.5 {
		t.Errorf("bboard recall = %.3f", m.Recall())
	}
}
