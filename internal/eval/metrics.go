// Package eval implements the paper's evaluation methodology: test cases
// are (sentence, subject) pairs; precision is computed over polar
// predictions, recall over gold-polar cases, and accuracy over all cases
// including neutral ones — exactly the protocol of Tables 4 and 5.
package eval

import (
	"fmt"

	"webfountain/internal/corpus"
	"webfountain/internal/lexicon"
	"webfountain/internal/spotter"
	"webfountain/internal/tokenize"
)

// Metrics accumulates evaluation counts.
type Metrics struct {
	// CorrectPolar counts polar predictions whose polarity matches a
	// polar gold label.
	CorrectPolar int
	// PredictedPolar counts all polar (non-neutral) predictions.
	PredictedPolar int
	// GoldPolar counts cases whose gold label is polar.
	GoldPolar int
	// Correct counts all correct predictions, where predicting neutral on
	// a neutral gold case is correct.
	Correct int
	// Total counts all cases.
	Total int
}

// Add records one (gold, predicted) pair.
func (m *Metrics) Add(gold, pred lexicon.Polarity) {
	m.Total++
	if gold != lexicon.Neutral {
		m.GoldPolar++
	}
	if pred != lexicon.Neutral {
		m.PredictedPolar++
	}
	if gold == pred {
		m.Correct++
		if gold != lexicon.Neutral {
			m.CorrectPolar++
		}
	}
}

// Precision is correct polar predictions over all polar predictions.
func (m Metrics) Precision() float64 {
	if m.PredictedPolar == 0 {
		return 0
	}
	return float64(m.CorrectPolar) / float64(m.PredictedPolar)
}

// Recall is correct polar predictions over gold-polar cases.
func (m Metrics) Recall() float64 {
	if m.GoldPolar == 0 {
		return 0
	}
	return float64(m.CorrectPolar) / float64(m.GoldPolar)
}

// Accuracy is correct predictions over all cases, neutrals included.
func (m Metrics) Accuracy() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Total)
}

// String renders the three headline numbers.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%% Acc=%.1f%% (n=%d)",
		100*m.Precision(), 100*m.Recall(), 100*m.Accuracy(), m.Total)
}

// Case is one evaluation unit: a subject spotted in a sentence, with its
// gold polarity.
type Case struct {
	// Doc indexes the document within the evaluated corpus.
	Doc int
	// SentIdx is the sentence index within the document.
	SentIdx int
	// Subject is the canonical subject (synonym set ID).
	Subject string
	// SpotStart and SpotEnd are token indices of the subject within the
	// tokenized sentence.
	SpotStart, SpotEnd int
	// Gold is the gold polarity (Neutral for unlabeled mentions).
	Gold lexicon.Polarity
	// Detectable mirrors the corpus label flag (false for gold-neutral).
	Detectable bool
}

// Cases builds the evaluation cases for a corpus: every (sentence,
// subject) pair found by the spotter, deduplicated, with gold labels from
// the generator. Unlabeled mentions are gold-neutral, per the protocol
// that a mention without sentiment is a neutral case.
func Cases(docs []corpus.Document, subjectTerms []string) []Case {
	sp := spotter.New(corpus.SynonymSets(subjectTerms))
	tk := tokenize.New()
	var out []Case
	for di := range docs {
		d := &docs[di]
		for si := range d.Sentences {
			toks := tk.Tokenize(d.Sentences[si].Text)
			seen := map[string]bool{}
			spots := maximalSpots(sp.SpotTokens(toks))
			for _, s := range spots {
				if seen[s.SetID] {
					continue
				}
				seen[s.SetID] = true
				gold, _ := d.GoldFor(si, s.SetID)
				detectable := false
				for _, l := range d.Sentences[si].Labels {
					if equalFold(l.Subject, s.SetID) {
						detectable = l.Detectable
					}
				}
				out = append(out, Case{
					Doc:        di,
					SentIdx:    si,
					Subject:    s.SetID,
					SpotStart:  s.Start,
					SpotEnd:    s.End,
					Gold:       gold,
					Detectable: detectable,
				})
			}
		}
	}
	return out
}

// maximalSpots drops spots strictly contained in a longer spot (longest-
// match spotting): in "the image quality", the nested "image" and
// "quality" spots are shadowed by "image quality". Without this, nested
// mentions show up as unlabeled gold-neutral cases that any correct
// assignment to the enclosing phrase "contradicts".
func maximalSpots(spots []spotter.Spot) []spotter.Spot {
	var out []spotter.Spot
	for i, s := range spots {
		contained := false
		for j, t := range spots {
			if i == j {
				continue
			}
			if t.Start <= s.Start && s.End <= t.End && t.End-t.Start > s.End-s.Start {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
