package sentiment

import (
	"strings"
	"testing"
	"testing/quick"

	"webfountain/internal/chunk"
	"webfountain/internal/lexicon"
	"webfountain/internal/patterns"
	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

var (
	tk = tokenize.New()
	tg = pos.NewTagger()
)

func analyze(t *testing.T, s string) []Assignment {
	t.Helper()
	a := New(nil, nil)
	return a.Analyze(tg.Tag(tk.Tokenize(s)))
}

// one asserts exactly one assignment with the given target substring and
// polarity.
func one(t *testing.T, s, targetSub string, pol lexicon.Polarity) Assignment {
	t.Helper()
	as := analyze(t, s)
	if len(as) != 1 {
		t.Fatalf("%q: got %d assignments %+v, want 1", s, len(as), as)
	}
	if !strings.Contains(strings.ToLower(as[0].Target), strings.ToLower(targetSub)) {
		t.Errorf("%q: target %q does not contain %q", s, as[0].Target, targetSub)
	}
	if as[0].Polarity != pol {
		t.Errorf("%q: polarity %v, want %v", s, as[0].Polarity, pol)
	}
	return as[0]
}

func TestPaperExampleImpressPassive(t *testing.T) {
	a := one(t, "I am impressed by the flash capabilities.", "flash capabilities", lexicon.Positive)
	if !strings.Contains(a.Pattern, "PP") {
		t.Errorf("pattern = %q, want the PP(by;with) pattern", a.Pattern)
	}
}

func TestPaperExampleCopula(t *testing.T) {
	a := one(t, "The colors are vibrant.", "colors", lexicon.Positive)
	if a.Pattern != "be CP SP" {
		t.Errorf("pattern = %q", a.Pattern)
	}
}

func TestPaperExampleOffer(t *testing.T) {
	one(t, "The company offers high quality products.", "company", lexicon.Positive)
	one(t, "The company offers mediocre services.", "company", lexicon.Negative)
}

func TestPaperExampleTakeOPSP(t *testing.T) {
	a := one(t, "This camera takes excellent pictures.", "camera", lexicon.Positive)
	if a.Pattern != "take OP SP" {
		t.Errorf("pattern = %q", a.Pattern)
	}
}

func TestNegationReversesPatternSentiment(t *testing.T) {
	one(t, "This camera does not take excellent pictures.", "camera", lexicon.Negative)
	one(t, "The product fails to meet our quality expectations.", "product", lexicon.Negative)
	one(t, "The flash never fails.", "flash", lexicon.Positive)
}

func TestNegationInsidePhrase(t *testing.T) {
	// "no good reason" style in-phrase negation.
	as := analyze(t, "The camera offers no useful features.")
	if len(as) != 1 || as[0].Polarity != lexicon.Negative {
		t.Errorf("got %+v, want camera negative", as)
	}
}

func TestFixedVerbTowardSubject(t *testing.T) {
	one(t, "The battery drains quickly.", "battery", lexicon.Negative)
	one(t, "The software crashed twice.", "software", lexicon.Negative)
	one(t, "The zoom excels.", "zoom", lexicon.Positive)
}

func TestFixedVerbTowardObject(t *testing.T) {
	one(t, "I love this camera.", "camera", lexicon.Positive)
	one(t, "We hate the menu.", "menu", lexicon.Negative)
	one(t, "Critics praised the album.", "album", lexicon.Positive)
}

func TestUnlikeContrastRule(t *testing.T) {
	as := analyze(t, "Unlike the T70, the NR70 does not require an adapter.")
	if len(as) != 2 {
		t.Fatalf("got %d assignments %+v, want 2", len(as), as)
	}
	byTarget := map[string]lexicon.Polarity{}
	for _, a := range as {
		byTarget[a.Target] = a.Polarity
	}
	if byTarget["NR70"] != lexicon.Positive {
		t.Errorf("NR70 = %v, want + (%+v)", byTarget["NR70"], as)
	}
	if byTarget["T70"] != lexicon.Negative {
		t.Errorf("T70 = %v, want - (%+v)", byTarget["T70"], as)
	}
}

func TestMixedSentenceBothPolarities(t *testing.T) {
	// Modeled after the paper's NR70 example sentence 3: one positive and
	// one negative aspect in a coordinated sentence.
	as := analyze(t, "The NR70 takes gorgeous pictures but the battery is awful.")
	if len(as) != 2 {
		t.Fatalf("got %+v, want 2 assignments", as)
	}
	if as[0].Polarity != lexicon.Positive || as[1].Polarity != lexicon.Negative {
		t.Errorf("polarities = %v, %v", as[0].Polarity, as[1].Polarity)
	}
}

func TestNeutralSentenceNoAssignment(t *testing.T) {
	for _, s := range []string{
		"The camera has a three inch screen.",
		"The NR70 series is equipped with memory expansion.",
		"The company operates twelve refineries.",
		"The album contains ten tracks.",
	} {
		if as := analyze(t, s); len(as) != 0 {
			t.Errorf("%q: expected no assignment, got %+v", s, as)
		}
	}
}

func TestUnknownSentimentVerbNoAssignment(t *testing.T) {
	// Idiomatic sentiment outside lexicon/pattern coverage: recall gap by
	// design.
	if as := analyze(t, "This camera knocked my socks off."); len(as) != 0 {
		t.Errorf("expected recall gap, got %+v", as)
	}
}

func TestLinkingVerbComplement(t *testing.T) {
	one(t, "The chorus sounds bland.", "chorus", lexicon.Negative)
	one(t, "The lens feels sturdy.", "lens", lexicon.Positive)
}

func TestNominalComplement(t *testing.T) {
	one(t, "The NR70 is a great product.", "NR70", lexicon.Positive)
	one(t, "This album is a complete disaster.", "album", lexicon.Negative)
}

func TestOptionsDisableNegation(t *testing.T) {
	a := NewWithOptions(nil, nil, Options{DisableNegation: true})
	as := a.Analyze(tg.Tag(tk.Tokenize("This camera does not take excellent pictures.")))
	if len(as) != 1 || as[0].Polarity != lexicon.Positive {
		t.Errorf("with negation disabled want raw positive, got %+v", as)
	}
}

func TestOptionsDisableTransVerbs(t *testing.T) {
	a := NewWithOptions(nil, nil, Options{DisableTransVerbs: true})
	as := a.Analyze(tg.Tag(tk.Tokenize("The colors are vibrant.")))
	if len(as) != 0 {
		t.Errorf("trans verbs disabled should drop copula transfer, got %+v", as)
	}
}

func TestOptionsDisableContrast(t *testing.T) {
	a := NewWithOptions(nil, nil, Options{DisableContrast: true})
	as := a.Analyze(tg.Tag(tk.Tokenize("Unlike the T70, the NR70 does not require an adapter.")))
	if len(as) != 1 {
		t.Errorf("contrast disabled should yield one assignment, got %+v", as)
	}
}

func TestPhrasePolarityMixedNetsOut(t *testing.T) {
	a := New(nil, nil)
	mk := func(s string) chunk.Phrase {
		ts := tg.Tag(tk.Tokenize(s))
		return chunk.Phrase{Type: chunk.NP, Tokens: ts, Start: 0, End: len(ts), Head: len(ts) - 1}
	}
	if pol := a.PhrasePolarity(mk("an excellent but noisy lens")); pol != lexicon.Neutral {
		t.Errorf("mixed phrase polarity = %v, want neutral", pol)
	}
	if pol := a.PhrasePolarity(mk("excellent gorgeous noisy lens")); pol != lexicon.Positive {
		t.Errorf("2+ vs 1- = %v, want positive", pol)
	}
	if pol := a.PhrasePolarity(mk("no useful features")); pol != lexicon.Negative {
		t.Errorf("in-phrase negation = %v, want negative", pol)
	}
}

func TestTargetTextStripsDeterminers(t *testing.T) {
	as := analyze(t, "The battery life is excellent.")
	if len(as) != 1 || as[0].Target != "battery life" {
		t.Errorf("target = %+v, want 'battery life'", as)
	}
}

func TestForSpanFilters(t *testing.T) {
	toks := tg.Tag(tk.Tokenize("The zoom is responsive and the menu is confusing."))
	a := New(nil, nil)
	as := a.Analyze(toks)
	if len(as) != 2 {
		t.Fatalf("want 2 assignments, got %+v", as)
	}
	// Token index of "menu".
	menuIdx := -1
	for i, tok := range toks {
		if tok.Text == "menu" {
			menuIdx = i
		}
	}
	hits := ForSpan(as, menuIdx, menuIdx+1)
	if len(hits) != 1 || hits[0].Polarity != lexicon.Negative {
		t.Errorf("ForSpan(menu) = %+v", hits)
	}
}

func TestNetCombination(t *testing.T) {
	plus := Assignment{Polarity: lexicon.Positive}
	minus := Assignment{Polarity: lexicon.Negative}
	if Net([]Assignment{plus, plus, minus}) != lexicon.Positive {
		t.Error("2+ 1- should be positive")
	}
	if Net([]Assignment{plus, minus}) != lexicon.Neutral {
		t.Error("tie should be neutral")
	}
	if Net(nil) != lexicon.Neutral {
		t.Error("empty should be neutral")
	}
}

func TestSubjectSentimentContext(t *testing.T) {
	text := "I bought the NR70 last month. The NR70 takes gorgeous pictures."
	sents := tk.Sentences(text)
	a := New(nil, nil)
	// Subject = NR70 in the second sentence (focus 1).
	var subjIdx int
	for i, tok := range sents[1].Tokens {
		if tok.Text == "NR70" {
			subjIdx = i
		}
	}
	ctx := BuildContext(sents, 1, 0, subjIdx, subjIdx+1)
	hits, ok := a.SubjectSentiment(tg, ctx)
	if !ok || len(hits) == 0 || hits[0].Polarity != lexicon.Positive {
		t.Errorf("SubjectSentiment = %+v, %v", hits, ok)
	}
}

func TestSubjectSentimentWindowFallback(t *testing.T) {
	text := "The NR70 shipped in April. The NR70 takes gorgeous pictures."
	sents := tk.Sentences(text)
	a := New(nil, nil)
	var subjIdx int
	for i, tok := range sents[0].Tokens {
		if tok.Text == "NR70" {
			subjIdx = i
		}
	}
	// Focus on the neutral first sentence with a +/-1 sentence window: the
	// fallback picks up the assignment from the neighbour whose target
	// shares the head noun.
	ctx := BuildContext(sents, 0, 1, subjIdx, subjIdx+1)
	hits, ok := a.SubjectSentiment(tg, ctx)
	if !ok || len(hits) == 0 || hits[0].Polarity != lexicon.Positive {
		t.Errorf("window fallback = %+v, %v", hits, ok)
	}
	// Without the window there is no sentiment.
	ctx0 := BuildContext(sents, 0, 0, subjIdx, subjIdx+1)
	if _, ok := a.SubjectSentiment(tg, ctx0); ok {
		t.Error("window 0 should find nothing in the neutral sentence")
	}
}

func TestBuildContextClampsWindow(t *testing.T) {
	sents := tk.Sentences("One. Two. Three.")
	ctx := BuildContext(sents, 0, 5, 0, 1)
	if len(ctx.Sentences) != 3 || ctx.Focus != 0 {
		t.Errorf("ctx = %+v", ctx)
	}
	ctx = BuildContext(sents, 2, 1, 0, 1)
	if len(ctx.Sentences) != 2 || ctx.Focus != 1 {
		t.Errorf("ctx = %+v", ctx)
	}
}

func TestCustomLexiconAndPatterns(t *testing.T) {
	lx := lexicon.New()
	// POS "" is the wildcard: it matches any tag, which is what a user
	// wants for invented vocabulary the tagger cannot classify.
	lx.Add(lexicon.Entry{Term: "zorpy", POS: "", Pol: lexicon.Positive})
	db := patterns.NewDB()
	if err := db.Load(strings.NewReader("be CP SP")); err != nil {
		t.Fatal(err)
	}
	a := New(lx, db)
	as := a.Analyze(tg.Tag(tk.Tokenize("The gizmo is zorpy.")))
	if len(as) != 1 || as[0].Polarity != lexicon.Positive {
		t.Errorf("custom resources: %+v", as)
	}
}

// Property: analyzer output is deterministic and all phrases well-formed.
func TestQuickAnalyzeTotal(t *testing.T) {
	a := New(nil, nil)
	f := func(s string) bool {
		ts := tg.Tag(tk.Tokenize(s))
		as1 := a.Analyze(ts)
		as2 := a.Analyze(ts)
		if len(as1) != len(as2) {
			return false
		}
		for i := range as1 {
			if as1[i].Target != as2[i].Target || as1[i].Polarity != as2[i].Polarity {
				return false
			}
			if as1[i].Polarity == lexicon.Neutral {
				return false // assignments are never neutral
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComparativeThanRule(t *testing.T) {
	as := analyze(t, "The NR70 is better than the T600.")
	byTarget := map[string]lexicon.Polarity{}
	for _, a := range as {
		byTarget[a.Target] = a.Polarity
	}
	if byTarget["NR70"] != lexicon.Positive {
		t.Errorf("NR70 = %v (%+v)", byTarget["NR70"], as)
	}
	if byTarget["T600"] != lexicon.Negative {
		t.Errorf("T600 = %v (%+v)", byTarget["T600"], as)
	}

	as = analyze(t, "The menu is worse than the old firmware.")
	byTarget = map[string]lexicon.Polarity{}
	for _, a := range as {
		byTarget[a.Target] = a.Polarity
	}
	if byTarget["menu"] != lexicon.Negative {
		t.Errorf("menu = %v (%+v)", byTarget["menu"], as)
	}
	if byTarget["old firmware"] != lexicon.Positive {
		t.Errorf("old firmware = %v (%+v)", byTarget["old firmware"], as)
	}
}

func TestComparativeRegularForms(t *testing.T) {
	one(t, "The viewfinder is brighter.", "viewfinder", lexicon.Positive)
	one(t, "The playback is choppier.", "playback", lexicon.Negative)
}

func TestComparativeDisabledWithContrastOption(t *testing.T) {
	a := NewWithOptions(nil, nil, Options{DisableContrast: true})
	as := a.Analyze(tg.Tag(tk.Tokenize("The NR70 is better than the T600.")))
	for _, asg := range as {
		if asg.Pattern == "comparative(than)" {
			t.Errorf("comparative rule fired while disabled: %+v", asg)
		}
	}
}
