// Package sentiment implements the paper's core contribution: the
// sentiment analyzer that determines, for each subject reference, the
// sentiment expressed specifically about that subject.
//
// For every clause of a parsed sentence the analyzer identifies the
// predicate, finds the best matching entry in the sentiment pattern
// database, computes the polarity — either the predicate's own fixed
// polarity or, for trans verbs, the polarity of the source phrase looked
// up in the sentiment lexicon — applies sentence-level negation, and
// assigns the result to the pattern's target phrase.
package sentiment

import (
	"strings"

	"webfountain/internal/chunk"
	"webfountain/internal/lexicon"
	"webfountain/internal/patterns"
	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

// Assignment is one (target, sentiment) pair extracted from a sentence.
type Assignment struct {
	// Target is the surface text of the phrase the sentiment is directed
	// to (determiners stripped).
	Target string
	// Polarity is the assigned sentiment.
	Polarity lexicon.Polarity
	// Pattern records which pattern fired, in the paper's notation, for
	// tracing; "lexicon-verb" and "contrast(unlike)" mark the fallback and
	// the contrast rule.
	Pattern string
	// Phrase is the target phrase itself; its token offsets locate the
	// target in the sentence.
	Phrase chunk.Phrase
	// Negated reports that sentence-level negation flipped the polarity.
	Negated bool
}

// Options control analyzer behaviour. The zero value enables the full
// algorithm; fields exist to ablate individual design choices.
type Options struct {
	// DisableNegation skips polarity reversal for negation adverbs, both
	// at phrase level and sentence level.
	DisableNegation bool
	// DisableTransVerbs skips source-phrase transfer: trans-verb patterns
	// are ignored and only fixed-polarity patterns and the lexicon-verb
	// fallback fire.
	DisableTransVerbs bool
	// DisableContrast skips the unlike-PP contrast rule.
	DisableContrast bool
}

// Analyzer extracts per-subject sentiment from parsed sentences.
type Analyzer struct {
	lex  *lexicon.Lexicon
	db   *patterns.DB
	opts Options
}

// New returns an analyzer over the given lexicon and pattern database.
// Nil arguments select the embedded defaults.
func New(lex *lexicon.Lexicon, db *patterns.DB) *Analyzer {
	return NewWithOptions(lex, db, Options{})
}

// NewWithOptions is New with explicit Options.
func NewWithOptions(lex *lexicon.Lexicon, db *patterns.DB, opts Options) *Analyzer {
	if lex == nil {
		lex = lexicon.Shared()
	}
	if db == nil {
		db = patterns.Shared()
	}
	return &Analyzer{lex: lex, db: db, opts: opts}
}

// Lexicon returns the analyzer's sentiment lexicon.
func (a *Analyzer) Lexicon() *lexicon.Lexicon { return a.lex }

// AnalyzeClauses extracts sentiment assignments from pre-computed clauses.
func (a *Analyzer) AnalyzeClauses(clauses []chunk.Clause) []Assignment {
	return a.AppendAssignments(nil, clauses)
}

// AppendAssignments appends the assignments of the clauses to dst and
// returns the extended slice, so a caller can reuse one buffer across
// sentences.
func (a *Analyzer) AppendAssignments(dst []Assignment, clauses []chunk.Clause) []Assignment {
	for i := range clauses {
		dst = a.analyzeClause(dst, clauses[i])
	}
	return dst
}

// Analyze tags nothing itself: it takes a tagged sentence, chunks it and
// extracts assignments.
func (a *Analyzer) Analyze(ts []pos.TaggedToken) []Assignment {
	ck := chunk.New()
	return a.AnalyzeClauses(ck.Clauses(ts))
}

// reversalVerbs flip the polarity of a following infinitival complement:
// "fails to impress" is negative even though impress is positive.
var reversalVerbs = map[string]bool{
	"fail": true, "refuse": true, "decline": true, "cease": true,
	"stop": true, "neglect": true, "forget": true,
}

// analyzeClause applies pattern matching and sentiment assignment to one
// clause, appending results to dst. With a catenative predicate chain
// ("fails to meet expectations"), the verbs are tried from last to first;
// reversal verbs earlier in the chain flip the resulting polarity.
func (a *Analyzer) analyzeClause(dst []Assignment, cl chunk.Clause) []Assignment {
	if cl.Predicate == nil {
		return a.verblessFallback(dst, cl)
	}
	chain := cl.ChainVerbs
	var one [1]pos.TaggedToken
	if len(chain) == 0 {
		one[0] = cl.MainVerb
		chain = one[:]
	}

	for k := len(chain) - 1; k >= 0; k-- {
		lemma := pos.VerbLemma(chain[k].Text)
		pat, ok := a.bestPattern(lemma, cl)
		if !ok {
			continue
		}
		pol := pat.Fixed
		if pat.IsTrans() {
			src, srcOK := rolePhrase(cl, pat.Source)
			if !srcOK {
				return dst
			}
			if pat.Source.Role == chunk.RoleCP {
				pol = a.complementPolarity(src)
			} else {
				pol = a.PhrasePolarity(src)
			}
			if pat.InvertSource {
				pol = pol.Flip()
			}
		}
		if pol == lexicon.Neutral {
			return dst
		}
		negated := false
		for j := 0; j < k; j++ {
			if reversalVerbs[pos.VerbLemma(chain[j].Text)] {
				pol = pol.Flip()
			}
		}
		if cl.Negated && !a.opts.DisableNegation {
			pol = pol.Flip()
			negated = true
		}
		tgt, tgtOK := rolePhrase(cl, pat.Target)
		if !tgtOK {
			return dst
		}
		dst = append(dst, Assignment{
			Target:   TargetText(tgt),
			Polarity: pol,
			Pattern:  pat.String(),
			Phrase:   tgt,
			Negated:  negated,
		})
		dst = a.contrastAssignments(dst, cl, tgt, pol)
		dst = a.comparativeAssignments(dst, cl, tgt, pol)
		return dst
	}

	// Fallback: a chain verb may be a sentiment word even without a
	// pattern entry ("the drums dazzle" with dazzle in the lexicon).
	for k := len(chain) - 1; k >= 0; k-- {
		lemma := pos.VerbLemma(chain[k].Text)
		if lemma == "be" || lemma == "do" || lemma == "have" {
			continue
		}
		if out := a.lexiconVerbFallback(dst, cl, lemma); len(out) > len(dst) {
			return out
		}
	}
	return dst
}

// bestPattern picks the pattern for lemma whose structural constraints the
// clause satisfies best. A pattern is viable only if its target role is
// present (with a matching preposition for PP targets) and, for trans
// patterns, its source role is present. Among viable patterns the one with
// the most satisfied constraints wins; fixed-polarity passive patterns
// (target PP) are preferred when the clause is passive.
func (a *Analyzer) bestPattern(lemma string, cl chunk.Clause) (patterns.Pattern, bool) {
	var best patterns.Pattern
	bestScore := -1
	for _, p := range a.db.Lookup(lemma) {
		if a.opts.DisableTransVerbs && p.IsTrans() {
			continue
		}
		if _, ok := rolePhrase(cl, p.Target); !ok {
			continue
		}
		score := 1
		if p.IsTrans() {
			src, ok := rolePhrase(cl, p.Source)
			if !ok {
				continue
			}
			score++
			if a.PhrasePolarity(src) != lexicon.Neutral {
				score++
			}
		}
		if p.Target.Role == chunk.RolePP {
			if cl.Passive {
				score += 2 // "I am impressed by X" prefers the PP pattern
			}
			score++ // a matching restricted PP is strong evidence
		} else if p.Target.Role == chunk.RoleSP && cl.Passive && hasPPTargetPattern(a.db.Lookup(lemma)) {
			// In a passive clause the surface subject is the experiencer,
			// not the sentiment target; penalize SP-target readings.
			score--
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best, bestScore >= 0
}

func hasPPTargetPattern(ps []patterns.Pattern) bool {
	for _, p := range ps {
		if p.Target.Role == chunk.RolePP {
			return true
		}
	}
	return false
}

// rolePhrase resolves a role spec against a clause. For PP roles the first
// preposition-compatible PP wins; its inner NP (tokens after the
// preposition) is returned as the phrase.
func rolePhrase(cl chunk.Clause, spec patterns.RoleSpec) (chunk.Phrase, bool) {
	switch spec.Role {
	case chunk.RoleSP:
		if cl.Subject != nil {
			return *cl.Subject, true
		}
	case chunk.RoleOP:
		if cl.Object != nil {
			return *cl.Object, true
		}
	case chunk.RoleCP:
		if cl.Complement != nil {
			return *cl.Complement, true
		}
	case chunk.RolePP:
		for _, pp := range cl.PPs {
			if spec.MatchesPrep(pp.Prep) {
				return innerNP(pp), true
			}
		}
	}
	return chunk.Phrase{}, false
}

// innerNP strips the preposition off a PP, leaving the noun phrase.
func innerNP(pp chunk.Phrase) chunk.Phrase {
	if len(pp.Tokens) <= 1 {
		return pp
	}
	np := pp
	np.Tokens = pp.Tokens[1:]
	np.Start = pp.Start + 1
	np.Type = chunk.NP
	np.Head = len(np.Tokens) - 1
	for i := len(np.Tokens) - 1; i >= 0; i-- {
		if np.Tokens[i].Tag.IsNoun() {
			np.Head = i
			break
		}
	}
	return np
}

// contrastAssignments implements the unlike-PP rule: "Unlike the T series
// CLIEs, the NR70 does not require an adapter" assigns the subject's
// sentiment, flipped, to the unlike-phrase.
func (a *Analyzer) contrastAssignments(dst []Assignment, cl chunk.Clause, target chunk.Phrase, pol lexicon.Polarity) []Assignment {
	if a.opts.DisableContrast || cl.Subject == nil {
		return dst
	}
	// The contrast only makes sense when the sentiment landed on the
	// subject.
	if target.Start != cl.Subject.Start {
		return dst
	}
	for _, pp := range cl.PPs {
		if pp.Prep != "unlike" {
			continue
		}
		np := innerNP(pp)
		dst = append(dst, Assignment{
			Target:   TargetText(np),
			Polarity: pol.Flip(),
			Pattern:  "contrast(unlike)",
			Phrase:   np,
		})
	}
	return dst
}

// lexiconVerbFallback handles predicates absent from the pattern database
// but present in the sentiment lexicon. The sentiment goes to the object
// when the subject is a first/third-person opinion holder, otherwise to
// the subject.
func (a *Analyzer) lexiconVerbFallback(dst []Assignment, cl chunk.Clause, lemma string) []Assignment {
	pol, ok := a.lex.Lookup(lemma, pos.VB)
	if !ok || pol == lexicon.Neutral {
		return dst
	}
	negated := false
	if cl.Negated && !a.opts.DisableNegation {
		pol = pol.Flip()
		negated = true
	}
	var tgt chunk.Phrase
	havePassivePP := false
	if cl.Passive {
		// "I was enchanted by the harbor view": the by/with phrase names
		// what caused the feeling, exactly as the PP(by;with) patterns do.
		for _, pp := range cl.PPs {
			if pp.Prep == "by" || pp.Prep == "with" {
				tgt = innerNP(pp)
				havePassivePP = true
				break
			}
		}
	}
	switch {
	case havePassivePP:
	case cl.Object != nil && cl.Subject != nil && isOpinionHolder(*cl.Subject):
		tgt = *cl.Object
	case cl.Subject != nil:
		tgt = *cl.Subject
	case cl.Object != nil:
		tgt = *cl.Object
	default:
		return dst
	}
	dst = append(dst, Assignment{
		Target:   TargetText(tgt),
		Polarity: pol,
		Pattern:  "lexicon-verb",
		Phrase:   tgt,
		Negated:  negated,
	})
	return a.contrastAssignments(dst, cl, tgt, pol)
}

// verblessFallback extracts sentiment from verbless fragments ("A truly
// wonderful album.") by pairing an NP with sentiment-bearing modifiers.
func (a *Analyzer) verblessFallback(dst []Assignment, cl chunk.Clause) []Assignment {
	for _, p := range cl.Phrases {
		if p.Type != chunk.NP {
			continue
		}
		pol := a.PhrasePolarity(p)
		if pol == lexicon.Neutral {
			continue
		}
		dst = append(dst, Assignment{
			Target:   headText(p),
			Polarity: pol,
			Pattern:  "verbless-np",
			Phrase:   p,
		})
	}
	return dst
}

// opinionHolders are head words denoting a person expressing an opinion.
var opinionHolders = map[string]bool{
	"i": true, "we": true, "you": true, "he": true, "she": true,
	"they": true, "reviewer": true, "reviewers": true, "critic": true,
	"critics": true, "user": true, "users": true, "customer": true,
	"customers": true, "consumer": true, "consumers": true, "owner": true,
	"owners": true, "analyst": true, "analysts": true, "everyone": true,
	"everybody": true, "people": true, "fans": true, "fan": true,
	"listener": true, "listeners": true, "doctor": true, "doctors": true,
	"patient": true, "patients": true, "investor": true, "investors": true,
}

// isOpinionHolder reports whether the subject phrase denotes a person
// expressing an opinion (pronouns, reviewers, critics...).
func isOpinionHolder(p chunk.Phrase) bool {
	v, _ := tokenize.FoldProbe(opinionHolders, p.HeadToken().Text)
	return v
}

// comparativeAssignments handles "X is better than Y": when the matched
// complement carries a comparative adjective whose base form is polar, a
// than-PP names the disadvantaged comparand, which receives the opposite
// polarity — the comparative cousin of the unlike rule.
func (a *Analyzer) comparativeAssignments(dst []Assignment, cl chunk.Clause, target chunk.Phrase, pol lexicon.Polarity) []Assignment {
	if a.opts.DisableContrast || cl.Subject == nil || target.Start != cl.Subject.Start {
		return dst
	}
	for _, pp := range cl.PPs {
		if pp.Prep != "than" {
			continue
		}
		np := innerNP(pp)
		dst = append(dst, Assignment{
			Target:   TargetText(np),
			Polarity: pol.Flip(),
			Pattern:  "comparative(than)",
			Phrase:   np,
		})
	}
	return dst
}

// complementPolarity computes a complement phrase's polarity, resolving
// comparative forms ("better", "sharper") through their base adjectives.
func (a *Analyzer) complementPolarity(p chunk.Phrase) lexicon.Polarity {
	if pol := a.PhrasePolarity(p); pol != lexicon.Neutral {
		return pol
	}
	for _, t := range p.Tokens {
		// Comparatives of unknown adjectives get suffix-tagged as nouns
		// ("choppier" -> NN), so don't gate on the JJR/JJS tag: the lookup
		// only succeeds when the stripped base is a sentiment adjective,
		// which keeps agent nouns like "adapter" out.
		if pol, ok := a.lex.LookupComparative(t.Text); ok {
			return pol
		}
	}
	return lexicon.Neutral
}

// PhrasePolarity computes the sentiment of a phrase from the sentiment
// words it contains, reversing for negation adverbs inside the phrase
// ("no good", "hardly impressive"). Mixed evidence nets out; an exact tie
// is neutral.
func (a *Analyzer) PhrasePolarity(p chunk.Phrase) lexicon.Polarity {
	score := 0
	neg := false
	for i := 0; i < len(p.Tokens); {
		tok := p.Tokens[i]
		if chunk.IsNegationAdverb(tok.Text) && !a.opts.DisableNegation {
			neg = true
			i++
			continue
		}
		pol, n, ok := a.lex.LookupPhrase(p.Tokens, i)
		if !ok {
			i++
			continue
		}
		v := int(pol)
		if neg {
			v = -v
			neg = false
		}
		score += v
		i += n
	}
	switch {
	case score > 0:
		return lexicon.Positive
	case score < 0:
		return lexicon.Negative
	}
	return lexicon.Neutral
}

// TargetText renders a target phrase with leading determiners and
// possessive pronouns stripped: "the flash capabilities" -> "flash
// capabilities".
func TargetText(p chunk.Phrase) string {
	toks := p.Tokens
	for len(toks) > 0 && (toks[0].Tag == pos.DT || toks[0].Tag == pos.PRPS || toks[0].Tag == pos.PDT) {
		toks = toks[1:]
	}
	if len(toks) == 1 {
		return toks[0].Text
	}
	n := 0
	for _, t := range toks {
		n += len(t.Text) + 1
	}
	var b strings.Builder
	b.Grow(n - 1)
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

func headText(p chunk.Phrase) string { return p.HeadToken().Text }

// ForSpan filters assignments down to those whose target phrase overlaps
// the token index range [start, end) — used to answer "what is the
// sentiment about the subject spotted at this span?".
func ForSpan(as []Assignment, start, end int) []Assignment {
	return AppendForSpan(nil, as, start, end)
}

// AppendForSpan is ForSpan appending into a caller-owned buffer.
func AppendForSpan(dst, as []Assignment, start, end int) []Assignment {
	for _, a := range as {
		if a.Phrase.Start < end && start < a.Phrase.End {
			dst = append(dst, a)
		}
	}
	return dst
}

// Net combines a set of assignments for one subject into a single
// polarity: the sign of the sum (a tie of + and - yields Neutral).
func Net(as []Assignment) lexicon.Polarity {
	score := 0
	for _, a := range as {
		score += int(a.Polarity)
	}
	switch {
	case score > 0:
		return lexicon.Positive
	case score < 0:
		return lexicon.Negative
	}
	return lexicon.Neutral
}
