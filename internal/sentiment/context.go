package sentiment

import (
	"webfountain/internal/chunk"
	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

// Context is the sentiment context for one subject spot: the sentence
// containing the spot plus any surrounding sentences selected by the
// window formation rule, with the spot's token range marked.
type Context struct {
	// Sentences is the window, in document order.
	Sentences []tokenize.Sentence
	// Focus is the index within Sentences of the sentence holding the spot.
	Focus int
	// SubjectStart and SubjectEnd are token indices of the subject spot
	// within the focus sentence (half-open).
	SubjectStart, SubjectEnd int
}

// FocusSentence returns the sentence containing the subject spot.
func (c Context) FocusSentence() tokenize.Sentence { return c.Sentences[c.Focus] }

// BuildContext applies the sentiment context window formation rule: the
// full sentence containing the spot plus `window` sentences on each side.
// The paper's default is the sentence alone (window 0).
func BuildContext(sents []tokenize.Sentence, focus, window, subjStart, subjEnd int) Context {
	lo := focus - window
	if lo < 0 {
		lo = 0
	}
	hi := focus + window + 1
	if hi > len(sents) {
		hi = len(sents)
	}
	return Context{
		Sentences:    sents[lo:hi],
		Focus:        focus - lo,
		SubjectStart: subjStart,
		SubjectEnd:   subjEnd,
	}
}

// Scratch carries the reusable buffers of the tag→chunk→analyze pipeline
// so repeated per-spot analyses allocate nothing in steady state. The
// zero value is ready; results of a call are valid until the next call
// with the same Scratch.
type Scratch struct {
	tagged  []pos.TaggedToken
	chunk   chunk.Scratch
	ck      chunk.Chunker
	assigns []Assignment
	hits    []Assignment
}

// AnalyzeInto is Analyze reusing the scratch buffers. The returned
// assignments (and the phrases they reference) are valid until the next
// call with the same Scratch.
func (a *Analyzer) AnalyzeInto(sc *Scratch, ts []pos.TaggedToken) []Assignment {
	sc.assigns = a.AppendAssignments(sc.assigns[:0], sc.ck.ClausesInto(&sc.chunk, ts))
	return sc.assigns
}

// SubjectSentiment runs the analyzer over the context and reduces the
// assignments that target the subject spot to a single polarity. It also
// returns the matching assignments for tracing. Assignments from
// non-focus sentences only count when the focus sentence yields nothing —
// the window is a fallback, not an override.
func (a *Analyzer) SubjectSentiment(tagger *pos.Tagger, ctx Context) ([]Assignment, bool) {
	return a.SubjectSentimentInto(new(Scratch), tagger, ctx)
}

// SubjectSentimentInto is SubjectSentiment with caller-owned scratch: the
// focus-sentence hot path runs tag→chunk→analyze entirely in the scratch
// buffers. Returned assignments are valid until the next call with the
// same Scratch. The windowed fallback (ContextWindow > 0 and a silent
// focus sentence) still allocates — it is the rare path by construction.
func (a *Analyzer) SubjectSentimentInto(sc *Scratch, tagger *pos.Tagger, ctx Context) ([]Assignment, bool) {
	sc.tagged = tagger.AppendTags(sc.tagged[:0], ctx.FocusSentence().Tokens)
	as := a.AnalyzeInto(sc, sc.tagged)
	sc.hits = AppendForSpan(sc.hits[:0], as, ctx.SubjectStart, ctx.SubjectEnd)
	if len(sc.hits) > 0 {
		return sc.hits, true
	}
	// Fallback to surrounding sentences: a spot mentioned there under the
	// same head noun inherits their assignments.
	if len(ctx.Sentences) == 1 {
		return nil, false
	}
	head := subjectHead(ctx)
	if head == "" {
		return nil, false
	}
	var out []Assignment
	for i, s := range ctx.Sentences {
		if i == ctx.Focus {
			continue
		}
		tagged := tagger.TagSentence(s)
		for _, asg := range a.Analyze(tagged) {
			if asg.Phrase.HeadToken().Lower() == head {
				out = append(out, asg)
			}
		}
	}
	return out, len(out) > 0
}

func subjectHead(ctx Context) string {
	s := ctx.FocusSentence()
	if ctx.SubjectEnd-1 < 0 || ctx.SubjectEnd-1 >= len(s.Tokens) {
		return ""
	}
	return s.Tokens[ctx.SubjectEnd-1].Lower()
}
