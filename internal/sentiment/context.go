package sentiment

import (
	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

// Context is the sentiment context for one subject spot: the sentence
// containing the spot plus any surrounding sentences selected by the
// window formation rule, with the spot's token range marked.
type Context struct {
	// Sentences is the window, in document order.
	Sentences []tokenize.Sentence
	// Focus is the index within Sentences of the sentence holding the spot.
	Focus int
	// SubjectStart and SubjectEnd are token indices of the subject spot
	// within the focus sentence (half-open).
	SubjectStart, SubjectEnd int
}

// FocusSentence returns the sentence containing the subject spot.
func (c Context) FocusSentence() tokenize.Sentence { return c.Sentences[c.Focus] }

// BuildContext applies the sentiment context window formation rule: the
// full sentence containing the spot plus `window` sentences on each side.
// The paper's default is the sentence alone (window 0).
func BuildContext(sents []tokenize.Sentence, focus, window, subjStart, subjEnd int) Context {
	lo := focus - window
	if lo < 0 {
		lo = 0
	}
	hi := focus + window + 1
	if hi > len(sents) {
		hi = len(sents)
	}
	return Context{
		Sentences:    sents[lo:hi],
		Focus:        focus - lo,
		SubjectStart: subjStart,
		SubjectEnd:   subjEnd,
	}
}

// SubjectSentiment runs the analyzer over the context and reduces the
// assignments that target the subject spot to a single polarity. It also
// returns the matching assignments for tracing. Assignments from
// non-focus sentences only count when the focus sentence yields nothing —
// the window is a fallback, not an override.
func (a *Analyzer) SubjectSentiment(tagger *pos.Tagger, ctx Context) ([]Assignment, bool) {
	focus := tagger.TagSentence(ctx.FocusSentence())
	as := a.Analyze(focus)
	hits := ForSpan(as, ctx.SubjectStart, ctx.SubjectEnd)
	if len(hits) > 0 {
		return hits, true
	}
	// Fallback to surrounding sentences: a spot mentioned there under the
	// same head noun inherits their assignments.
	if len(ctx.Sentences) == 1 {
		return nil, false
	}
	head := subjectHead(ctx)
	if head == "" {
		return nil, false
	}
	var out []Assignment
	for i, s := range ctx.Sentences {
		if i == ctx.Focus {
			continue
		}
		tagged := tagger.TagSentence(s)
		for _, asg := range a.Analyze(tagged) {
			if asg.Phrase.HeadToken().Lower() == head {
				out = append(out, asg)
			}
		}
	}
	return out, len(out) > 0
}

func subjectHead(ctx Context) string {
	s := ctx.FocusSentence()
	if ctx.SubjectEnd-1 < 0 || ctx.SubjectEnd-1 >= len(s.Tokens) {
		return ""
	}
	return s.Tokens[ctx.SubjectEnd-1].Lower()
}
