package sentiment

import (
	"strings"
	"testing"

	"webfountain/internal/lexicon"
)

// goldenCase is one sentence with the expected (target-substring,
// polarity) assignments, in any order. An empty want list asserts that
// the analyzer stays silent.
type goldenCase struct {
	text string
	want map[string]lexicon.Polarity
}

// TestGoldenSuite exercises the analyzer on realistic sentences beyond the
// synthetic corpus vocabulary — copulas, trans verbs, passives, negation,
// verb chains, linking verbs, coordination, and known silence cases.
func TestGoldenSuite(t *testing.T) {
	cases := []goldenCase{
		// Copulas over extended-lexicon adjectives.
		{"The keyboard is superb.", map[string]lexicon.Polarity{"keyboard": lexicon.Positive}},
		{"The interface seems convoluted.", map[string]lexicon.Polarity{"interface": lexicon.Negative}},
		{"The soundtrack is breathtaking.", map[string]lexicon.Polarity{"soundtrack": lexicon.Positive}},
		{"The plot felt contrived.", map[string]lexicon.Polarity{"plot": lexicon.Negative}},
		{"The staff was courteous.", map[string]lexicon.Polarity{"staff": lexicon.Positive}},
		{"The checkout process is exasperating.", map[string]lexicon.Polarity{"process": lexicon.Negative}},
		{"The hotel lobby looked immaculate.", map[string]lexicon.Polarity{"lobby": lexicon.Positive}},
		{"The service remained dreadful.", map[string]lexicon.Polarity{"service": lexicon.Negative}},

		// Trans verbs with object transfer.
		{"The update delivers remarkable stability.", map[string]lexicon.Polarity{"update": lexicon.Positive}},
		{"The sequel offers tedious filler.", map[string]lexicon.Polarity{"sequel": lexicon.Negative}},
		{"The firm posted magnificent growth.", map[string]lexicon.Polarity{"firm": lexicon.Positive}},
		{"The merger produced chaotic results.", map[string]lexicon.Polarity{"merger": lexicon.Negative}},

		// Passives with by/with.
		{"I was enchanted by the harbor view.", map[string]lexicon.Polarity{"harbor view": lexicon.Positive}},
		{"We were appalled by the waiting room.", map[string]lexicon.Polarity{"waiting room": lexicon.Negative}},

		// Fixed verbs toward the object.
		{"Critics adored the screenplay.", map[string]lexicon.Polarity{"screenplay": lexicon.Positive}},
		{"Everyone despised the commute.", map[string]lexicon.Polarity{"commute": lexicon.Negative}},
		{"Guests treasure the courtyard.", map[string]lexicon.Polarity{"courtyard": lexicon.Positive}},

		// Fixed verbs toward the subject.
		{"The engine excels on long climbs.", map[string]lexicon.Polarity{"engine": lexicon.Positive}},
		{"The scheduler malfunctioned overnight.", map[string]lexicon.Polarity{"scheduler": lexicon.Negative}},
		{"The coating deteriorated within weeks.", map[string]lexicon.Polarity{"coating": lexicon.Negative}},

		// Negation flips.
		{"The keyboard is not superb.", map[string]lexicon.Polarity{"keyboard": lexicon.Negative}},
		{"The blade never rusts.", map[string]lexicon.Polarity{"blade": lexicon.Positive}},
		{"The printer does not jam.", map[string]lexicon.Polarity{"printer": lexicon.Positive}},

		// Verb chains with reversal.
		{"The suspension fails to impress.", map[string]lexicon.Polarity{"suspension": lexicon.Negative}},
		{"The cast fails to deliver memorable moments.", map[string]lexicon.Polarity{"cast": lexicon.Negative}},

		// Linking verbs.
		{"The broth tastes divine.", map[string]lexicon.Polarity{"broth": lexicon.Positive}},
		{"The mixture smells rancid.", map[string]lexicon.Polarity{"mixture": lexicon.Negative}},
		{"The fabric feels sumptuous and warm.", map[string]lexicon.Polarity{"fabric": lexicon.Positive}},

		// Coordination: two clauses, two targets.
		{"The kitchen is spotless but the hallway is grimy.", map[string]lexicon.Polarity{
			"kitchen": lexicon.Positive, "hallway": lexicon.Negative}},
		{"The opening act was dull and the finale was glorious.", map[string]lexicon.Polarity{
			"act": lexicon.Negative, "finale": lexicon.Positive}},

		// Nominal complements.
		{"The rollout was a fiasco.", map[string]lexicon.Polarity{"rollout": lexicon.Negative}},
		{"The comeback is a triumph.", map[string]lexicon.Polarity{"comeback": lexicon.Positive}},

		// Comparatives with than-phrases.
		{"The sequel is better than the original.", map[string]lexicon.Polarity{
			"sequel": lexicon.Positive, "original": lexicon.Negative}},
		{"The remake is worse than the first film.", map[string]lexicon.Polarity{
			"remake": lexicon.Negative, "film": lexicon.Positive}},

		// Unlike-contrast.
		{"Unlike the old terminal, the new concourse is splendid.", map[string]lexicon.Polarity{
			"concourse": lexicon.Positive, "terminal": lexicon.Negative}},

		// Silence: neutral statements must produce nothing.
		{"The shipment arrives on Thursday.", nil},
		{"The committee meets twice a month.", nil},
		{"The recipe calls for two eggs.", nil},
		{"The office sits above the bakery.", nil},

		// Silence: idiomatic sentiment outside coverage (the recall gap).
		{"The gadget knocked everyone's socks off.", nil},
		{"The show jumped the shark this season.", nil},
	}

	a := New(nil, nil)
	failures := 0
	for _, c := range cases {
		got := map[string]lexicon.Polarity{}
		for _, asg := range a.Analyze(tg.Tag(tk.Tokenize(c.text))) {
			got[strings.ToLower(asg.Target)] = asg.Polarity
		}
		if len(c.want) == 0 {
			if len(got) != 0 {
				t.Errorf("%q: expected silence, got %v", c.text, got)
				failures++
			}
			continue
		}
		for sub, pol := range c.want {
			matched := false
			for target, gp := range got {
				if strings.Contains(target, strings.ToLower(sub)) {
					matched = true
					if gp != pol {
						t.Errorf("%q: %s = %v, want %v", c.text, sub, gp, pol)
						failures++
					}
				}
			}
			if !matched {
				t.Errorf("%q: no assignment for %q (got %v)", c.text, sub, got)
				failures++
			}
		}
	}
	if failures > 0 {
		t.Logf("golden suite: %d failures out of %d cases", failures, len(cases))
	}
}
