package baselines

import (
	"testing"

	"webfountain/internal/lexicon"
	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

var (
	tk = tokenize.New()
	tg = pos.NewTagger()
)

func classify(t *testing.T, sentence, subject string) lexicon.Polarity {
	t.Helper()
	c := NewCollocation(nil)
	tagged := tg.Tag(tk.Tokenize(sentence))
	start, end := -1, -1
	for i, tok := range tagged {
		if tok.Lower() == subject {
			start, end = i, i+1
		}
	}
	if start < 0 {
		t.Fatalf("subject %q not in %q", subject, sentence)
	}
	return c.Classify(tagged, start, end)
}

func TestCollocationSimple(t *testing.T) {
	if got := classify(t, "The zoom is excellent.", "zoom"); got != lexicon.Positive {
		t.Errorf("got %v", got)
	}
	if got := classify(t, "The menu is confusing.", "menu"); got != lexicon.Negative {
		t.Errorf("got %v", got)
	}
	if got := classify(t, "The camera ships in a box.", "camera"); got != lexicon.Neutral {
		t.Errorf("got %v", got)
	}
}

func TestCollocationIgnoresAssociation(t *testing.T) {
	// Sentiment about the tripod, not the camera — collocation cannot
	// tell, which is its documented failure mode.
	got := classify(t, "I paired the camera with a sturdy tripod.", "camera")
	if got != lexicon.Positive {
		t.Errorf("got %v, want the (wrong) positive", got)
	}
}

func TestCollocationMajorityAndTie(t *testing.T) {
	if got := classify(t, "The zoom is excellent and superb yet noisy.", "zoom"); got != lexicon.Positive {
		t.Errorf("majority got %v", got)
	}
	if got := classify(t, "The zoom is excellent but noisy.", "zoom"); got != lexicon.Positive {
		t.Errorf("tie should resolve positive, got %v", got)
	}
	if got := classify(t, "The zoom is noisy, grainy, yet excellent.", "zoom"); got != lexicon.Negative {
		t.Errorf("negative majority got %v", got)
	}
}

func TestCollocationSkipsSubjectSpan(t *testing.T) {
	// "masterpiece" inside the subject span must not count.
	c := NewCollocation(nil)
	tagged := tg.Tag(tk.Tokenize("The masterpiece arrived on Tuesday."))
	got := c.Classify(tagged, 1, 2)
	if got != lexicon.Neutral {
		t.Errorf("got %v, want neutral when the only sentiment token is the subject itself", got)
	}
}

func TestNaiveBayesLearnsPolarity(t *testing.T) {
	nb := NewNaiveBayes()
	posDocs := []string{
		"I love this camera. The pictures are excellent and the zoom is superb. Overall I am delighted and recommend it.",
		"Wonderful album with catchy songs. Overall I am thrilled and happy with this purchase.",
		"Excellent value. The battery life is great and the screen is gorgeous. Highly recommend.",
	}
	negDocs := []string{
		"I hate this camera. The pictures are grainy and the menu is confusing. Overall I regret this purchase.",
		"Terrible album full of bland filler. Overall I am disappointed and unhappy.",
		"Awful value. The battery dies fast and the screen is dim. Avoid it.",
	}
	for _, d := range posDocs {
		nb.Train(d, lexicon.Positive)
	}
	for _, d := range negDocs {
		nb.Train(d, lexicon.Negative)
	}
	if !nb.Trained() {
		t.Fatal("not trained")
	}
	if got, _ := nb.Classify("The zoom is superb and I am delighted overall."); got != lexicon.Positive {
		t.Errorf("positive test got %v", got)
	}
	if got, _ := nb.Classify("The menu is confusing and I regret buying it."); got != lexicon.Negative {
		t.Errorf("negative test got %v", got)
	}
}

func TestNaiveBayesAlwaysPolar(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train("great wonderful excellent", lexicon.Positive)
	nb.Train("terrible awful bad", lexicon.Negative)
	// A completely neutral sentence still receives a polarity: the
	// classifier has no neutral class, which drives the Table 5 collapse.
	got, _ := nb.Classify("The company scheduled a meeting for October.")
	if got == lexicon.Neutral {
		t.Error("NB must not output neutral")
	}
}

func TestNaiveBayesUntrained(t *testing.T) {
	nb := NewNaiveBayes()
	if got, _ := nb.Classify("anything"); got != lexicon.Neutral {
		t.Errorf("untrained should be neutral, got %v", got)
	}
}

func TestNaiveBayesIgnoresNeutralTraining(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train("some text", lexicon.Neutral)
	if nb.Trained() {
		t.Error("neutral training should be ignored")
	}
}

func TestNaiveBayesBigramsMatter(t *testing.T) {
	nb := NewNaiveBayes()
	// "not good" appears only in negative training; "good" alone in
	// positive.
	for i := 0; i < 5; i++ {
		nb.Train("this is good and wonderful and excellent really", lexicon.Positive)
		nb.Train("this is not good at all and terrible awful", lexicon.Negative)
	}
	if got, _ := nb.Classify("it is not good honestly"); got != lexicon.Negative {
		t.Errorf("bigram negation got %v", got)
	}
}

func TestTrainOnDocuments(t *testing.T) {
	nb := NewNaiveBayes()
	nb.TrainOnDocuments(
		[]string{"great stuff", "bad stuff"},
		[]lexicon.Polarity{lexicon.Positive, lexicon.Negative},
	)
	if !nb.Trained() {
		t.Error("TrainOnDocuments did not train")
	}
}
