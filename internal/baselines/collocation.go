// Package baselines implements the two comparison systems of the paper's
// evaluation: the collocation algorithm and a ReviewSeer-style statistical
// classifier.
package baselines

import (
	"webfountain/internal/lexicon"
	"webfountain/internal/pos"
)

// Collocation implements the paper's collocation baseline: it assigns the
// polarity of sentiment terms co-occurring in the same sentence to the
// subject term. If positive and negative sentiment terms co-exist, the
// polarity with more counts is selected (ties resolve positive). It has
// no notion of grammatical association, which is exactly why its
// precision collapses on multi-subject sentences.
type Collocation struct {
	lex *lexicon.Lexicon
}

// NewCollocation returns a collocation classifier over the lexicon (nil
// selects the embedded default).
func NewCollocation(lex *lexicon.Lexicon) *Collocation {
	if lex == nil {
		lex = lexicon.Shared()
	}
	return &Collocation{lex: lex}
}

// Classify returns the majority polarity of the sentiment terms in the
// tagged sentence, ignoring tokens inside the subject span [subjStart,
// subjEnd). Neutral means no sentiment term co-occurred.
func (c *Collocation) Classify(tagged []pos.TaggedToken, subjStart, subjEnd int) lexicon.Polarity {
	pos, neg := 0, 0
	for i := 0; i < len(tagged); {
		if i >= subjStart && i < subjEnd {
			i++
			continue
		}
		pol, n, ok := c.lex.LookupPhrase(tagged, i)
		if !ok {
			i++
			continue
		}
		switch pol {
		case lexicon.Positive:
			pos++
		case lexicon.Negative:
			neg++
		}
		i += n
	}
	switch {
	case pos == 0 && neg == 0:
		return lexicon.Neutral
	case neg > pos:
		return lexicon.Negative
	default:
		return lexicon.Positive
	}
}
