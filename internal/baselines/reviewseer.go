package baselines

import (
	"math"
	"strings"

	"webfountain/internal/lexicon"
	"webfountain/internal/tokenize"
)

// NaiveBayes is a ReviewSeer-style statistical polarity classifier over
// unigram and bigram presence features (multivariate Bernoulli with
// document-frequency estimates). Like ReviewSeer it is trained on labeled
// review documents and always outputs a polarity — it has no neutral
// class and no notion of which subject the sentiment is about. Both
// properties are what the paper exploits: the classifier holds up on
// review documents (88.4%) and collapses on general web sentences (38%).
//
// Bernoulli estimates (how many documents of a class contain the feature)
// rather than multinomial token counts keep the classifier honest when
// both classes share most of their vocabulary: a feature present in every
// document of both classes contributes nothing, and only genuinely
// discriminative features move the decision.
type NaiveBayes struct {
	classDocs map[lexicon.Polarity]int
	docFreq   map[lexicon.Polarity]map[string]int
	vocab     map[string]bool
	totalDocs int
	tk        *tokenize.Tokenizer
}

// NewNaiveBayes returns an untrained classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		classDocs: make(map[lexicon.Polarity]int),
		docFreq: map[lexicon.Polarity]map[string]int{
			lexicon.Positive: {},
			lexicon.Negative: {},
		},
		vocab: make(map[string]bool),
		tk:    tokenize.New(),
	}
}

// features extracts lower-cased unigrams and bigrams.
func (nb *NaiveBayes) features(text string) []string {
	toks := nb.tk.Tokenize(text)
	var words []string
	for _, t := range toks {
		if t.Kind == tokenize.Word {
			words = append(words, strings.ToLower(t.Text))
		}
	}
	feats := make([]string, 0, 2*len(words))
	for i, w := range words {
		feats = append(feats, w)
		if i+1 < len(words) {
			feats = append(feats, w+" "+words[i+1])
		}
	}
	return feats
}

// Train adds one labeled document. Neutral labels are ignored (the model
// is binary, like ReviewSeer's polarity classifier).
func (nb *NaiveBayes) Train(text string, label lexicon.Polarity) {
	if label == lexicon.Neutral {
		return
	}
	nb.classDocs[label]++
	nb.totalDocs++
	df := nb.docFreq[label]
	seen := map[string]bool{}
	for _, f := range nb.features(text) {
		if seen[f] {
			continue
		}
		seen[f] = true
		df[f]++
		nb.vocab[f] = true
	}
}

// Trained reports whether any documents have been seen.
func (nb *NaiveBayes) Trained() bool { return nb.totalDocs > 0 }

// Classify returns the more probable polarity for the text and the log-
// probability margin between the classes (larger means more confident).
// An untrained classifier returns Neutral.
func (nb *NaiveBayes) Classify(text string) (lexicon.Polarity, float64) {
	if !nb.Trained() {
		return lexicon.Neutral, 0
	}
	feats := nb.features(text)
	scorePos := nb.logPosterior(lexicon.Positive, feats)
	scoreNeg := nb.logPosterior(lexicon.Negative, feats)
	if scorePos >= scoreNeg {
		return lexicon.Positive, scorePos - scoreNeg
	}
	return lexicon.Negative, scoreNeg - scorePos
}

func (nb *NaiveBayes) logPosterior(class lexicon.Polarity, feats []string) float64 {
	prior := float64(nb.classDocs[class]+1) / float64(nb.totalDocs+2)
	score := math.Log(prior)
	df := nb.docFreq[class]
	denom := float64(nb.classDocs[class] + 2)
	seen := map[string]bool{}
	for _, f := range feats {
		if seen[f] || !nb.vocab[f] {
			// Out-of-vocabulary features carry no evidence for either
			// class; scoring them would just multiply the class-size
			// imbalance by the feature count.
			continue
		}
		seen[f] = true
		score += math.Log(float64(df[f]+1) / denom)
	}
	return score
}

// TrainOnDocuments is a convenience for training on whole labeled review
// documents.
func (nb *NaiveBayes) TrainOnDocuments(texts []string, labels []lexicon.Polarity) {
	for i := range texts {
		nb.Train(texts[i], labels[i])
	}
}
