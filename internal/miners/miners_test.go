package miners

import (
	"fmt"
	"strings"
	"testing"

	"webfountain/internal/cluster"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

func put(t *testing.T, st *store.Store, e *store.Entity) {
	t.Helper()
	if err := st.Put(e); err != nil {
		t.Fatal(err)
	}
}

// --- GeoContext ---

func TestGeoContextSpotsPlacesAndRegion(t *testing.T) {
	st := store.New(2)
	put(t, st, &store.Entity{ID: "d1", Text: "The refinery in Texas ships crude to Japan. Texas output rose."})
	c := cluster.New(st, 1)
	if _, err := c.RunEntityMiner(NewGeoContext()); err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get("d1")
	places := Places(e)
	if len(places) != 2 || places[0] != "japan" || places[1] != "texas" {
		t.Errorf("places = %v", places)
	}
	if got := Region(e); got != "north-america" {
		t.Errorf("region = %q (texas twice vs japan once)", got)
	}
}

func TestGeoContextVariants(t *testing.T) {
	st := store.New(1)
	put(t, st, &store.Entity{ID: "d1", Text: "Offices in the U.S. and Holland opened."})
	c := cluster.New(st, 1)
	if _, err := c.RunEntityMiner(NewGeoContext()); err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get("d1")
	places := Places(e)
	want := map[string]bool{"united states": true, "netherlands": true}
	for _, p := range places {
		if !want[p] {
			t.Errorf("unexpected place %q", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("missing places: %v (got %v)", want, places)
	}
}

func TestGeoContextNoPlaces(t *testing.T) {
	g := NewGeoContext()
	anns, err := g.Process(&store.Entity{ID: "x", Text: "The battery life is excellent."})
	if err != nil || len(anns) != 0 {
		t.Errorf("anns = %v, err = %v", anns, err)
	}
}

// --- DuplicateDetector ---

func TestDedupFindsNearDuplicates(t *testing.T) {
	st := store.New(2)
	base := "The quick brown fox jumps over the lazy dog near the quiet river bank every single morning before dawn breaks over the eastern hills."
	put(t, st, &store.Entity{ID: "a1", Text: base})
	put(t, st, &store.Entity{ID: "a2", Text: base + " Extra sentence."})
	put(t, st, &store.Entity{ID: "b1", Text: "Completely different content about camera reviews and battery life measurements across fifteen products tested in our lab this year."})
	d := &DuplicateDetector{Threshold: 0.6}
	if err := d.Run(st); err != nil {
		t.Fatal(err)
	}
	cl := d.Clusters()
	if len(cl) != 1 {
		t.Fatalf("clusters = %v", cl)
	}
	if len(cl[0]) != 2 || cl[0][0] != "a1" || cl[0][1] != "a2" {
		t.Errorf("cluster = %v", cl[0])
	}
}

func TestDedupExactDuplicatesAlwaysMatch(t *testing.T) {
	st := store.New(2)
	text := "One two three four five six seven eight nine ten eleven twelve thirteen fourteen."
	put(t, st, &store.Entity{ID: "x", Text: text})
	put(t, st, &store.Entity{ID: "y", Text: text})
	d := &DuplicateDetector{}
	if err := d.Run(st); err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters()) != 1 {
		t.Errorf("clusters = %v", d.Clusters())
	}
}

func TestDedupShortDocsSkipped(t *testing.T) {
	st := store.New(1)
	put(t, st, &store.Entity{ID: "s1", Text: "too short"})
	put(t, st, &store.Entity{ID: "s2", Text: "too short"})
	d := &DuplicateDetector{}
	if err := d.Run(st); err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters()) != 0 {
		t.Errorf("short docs should not cluster: %v", d.Clusters())
	}
}

func TestEstimateJaccard(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	b := []uint32{1, 2, 9, 9}
	if got := estimateJaccard(a, b); got != 0.5 {
		t.Errorf("jaccard = %v", got)
	}
	if got := estimateJaccard(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

// --- PageRank ---

func TestPageRankFavorsLinkedDocuments(t *testing.T) {
	st := store.New(2)
	// hub <- a, b, c; chain c -> b -> hub.
	put(t, st, &store.Entity{ID: "hub", Text: "t"})
	put(t, st, &store.Entity{ID: "a", Text: "t", Links: []string{"hub"}})
	put(t, st, &store.Entity{ID: "b", Text: "t", Links: []string{"hub"}})
	put(t, st, &store.Entity{ID: "c", Text: "t", Links: []string{"hub", "b"}})
	pr := &PageRank{}
	if err := pr.Run(st); err != nil {
		t.Fatal(err)
	}
	if pr.Score("hub") <= pr.Score("a") {
		t.Errorf("hub %v should outrank leaf %v", pr.Score("hub"), pr.Score("a"))
	}
	if pr.Score("b") <= pr.Score("a") {
		t.Errorf("b (one inlink) %v should outrank a (none) %v", pr.Score("b"), pr.Score("a"))
	}
	top := pr.Top(2)
	if len(top) != 2 || top[0].ID != "hub" {
		t.Errorf("top = %v", top)
	}
	if pr.Iterations() == 0 {
		t.Error("no iterations recorded")
	}
}

func TestPageRankScoresSumToOne(t *testing.T) {
	st := store.New(2)
	for i := 0; i < 10; i++ {
		e := &store.Entity{ID: fmt.Sprintf("d%d", i), Text: "t"}
		if i > 0 {
			e.Links = []string{fmt.Sprintf("d%d", i-1)}
		}
		put(t, st, e)
	}
	pr := &PageRank{}
	if err := pr.Run(st); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range pr.Top(100) {
		sum += r.Score
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestPageRankIgnoresUnknownLinks(t *testing.T) {
	st := store.New(1)
	put(t, st, &store.Entity{ID: "a", Text: "t", Links: []string{"missing", "a"}})
	pr := &PageRank{}
	if err := pr.Run(st); err != nil {
		t.Fatal(err)
	}
	if s := pr.Score("a"); s <= 0 {
		t.Errorf("score = %v", s)
	}
}

func TestPageRankEmptyStore(t *testing.T) {
	pr := &PageRank{}
	if err := pr.Run(store.New(1)); err != nil {
		t.Fatal(err)
	}
	if len(pr.Top(5)) != 0 {
		t.Error("empty store should have no ranks")
	}
}

// --- TemplateDetector ---

func TestTemplateDetectorFindsBoilerplate(t *testing.T) {
	st := store.New(2)
	footer := "Copyright example press all rights reserved."
	for i := 0; i < 8; i++ {
		put(t, st, &store.Entity{
			ID:   fmt.Sprintf("p%d", i),
			URL:  "http://reviews.example/page" + fmt.Sprint(i),
			Text: fmt.Sprintf("Unique content number %d about cameras. %s", i, footer),
		})
	}
	td := &TemplateDetector{}
	if err := td.Run(st); err != nil {
		t.Fatal(err)
	}
	if n := td.TemplateCount("reviews.example"); n != 1 {
		t.Errorf("template count = %d", n)
	}
	e, _ := st.Get("p0")
	content := td.ContentSentences(e)
	joined := ""
	for _, s := range content {
		joined += s.Text() + " "
	}
	if strings.Contains(joined, "Copyright") {
		t.Errorf("boilerplate not filtered: %q", joined)
	}
	if !strings.Contains(joined, "Unique content") {
		t.Errorf("content lost: %q", joined)
	}
}

func TestTemplateDetectorRespectsMinDocs(t *testing.T) {
	st := store.New(1)
	for i := 0; i < 3; i++ { // below MinDocs=5
		put(t, st, &store.Entity{
			ID:   fmt.Sprintf("p%d", i),
			URL:  "http://small.example/p",
			Text: "Shared sentence on every page.",
		})
	}
	td := &TemplateDetector{}
	if err := td.Run(st); err != nil {
		t.Fatal(err)
	}
	if td.TemplateCount("small.example") != 0 {
		t.Error("small hosts must be exempt")
	}
}

func TestTemplateDetectorHostIsolation(t *testing.T) {
	st := store.New(2)
	for i := 0; i < 6; i++ {
		put(t, st, &store.Entity{
			ID:  fmt.Sprintf("a%d", i),
			URL: "http://a.example/x", Text: "Host a footer line here."})
		put(t, st, &store.Entity{
			ID:  fmt.Sprintf("b%d", i),
			URL: "http://b.example/x", Text: fmt.Sprintf("Fresh text %d.", i)})
	}
	td := &TemplateDetector{}
	if err := td.Run(st); err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	footer := tk.Sentences("Host a footer line here.")[0]
	if !td.IsTemplate("a.example", footer) {
		t.Error("footer should be template on host a")
	}
	if td.IsTemplate("b.example", footer) {
		t.Error("template sets must not leak across hosts")
	}
}

// --- AggregateStats ---

func TestAggregateStats(t *testing.T) {
	st := store.New(2)
	put(t, st, &store.Entity{ID: "a", Source: "review", Text: "camera camera lens"})
	put(t, st, &store.Entity{ID: "b", Source: "web", Text: "camera oil"})
	agg := &AggregateStats{TopK: 2}
	if err := agg.Run(st); err != nil {
		t.Fatal(err)
	}
	if agg.Documents != 2 || agg.Tokens != 5 || agg.Vocabulary != 3 {
		t.Errorf("stats = %+v", agg)
	}
	if agg.AvgDocTokens != 2.5 {
		t.Errorf("avg = %v", agg.AvgDocTokens)
	}
	if agg.BySource["review"] != 1 || agg.BySource["web"] != 1 {
		t.Errorf("by source = %v", agg.BySource)
	}
	if len(agg.TopTerms) != 2 || agg.TopTerms[0].Term != "camera" || agg.TopTerms[0].Count != 3 {
		t.Errorf("top terms = %v", agg.TopTerms)
	}
}

// --- Trend ---

func TestTrendBucketsSentimentByMonth(t *testing.T) {
	st := store.New(2)
	mk := func(id, date, pol string) {
		e := &store.Entity{ID: id, Date: date, Text: "t"}
		e.Annotate(store.Annotation{Miner: "sentiment", Type: "polarity", Key: "nr70", Value: pol})
		put(t, st, e)
	}
	mk("d1", "2004-01-10", "-")
	mk("d2", "2004-01-20", "-")
	mk("d3", "2004-02-05", "+")
	mk("d4", "2004-11-09", "+")
	mk("d5", "2004-11-21", "+")

	tr := &Trend{}
	if err := tr.Run(st); err != nil {
		t.Fatal(err)
	}
	series := tr.Series("nr70")
	if len(series) != 3 {
		t.Fatalf("series = %+v", series)
	}
	if series[0].Month != "2004-01" || series[0].Negative != 2 {
		t.Errorf("jan = %+v", series[0])
	}
	if series[2].Month != "2004-11" || series[2].Positive != 2 {
		t.Errorf("nov = %+v", series[2])
	}
	mom, ok := tr.Momentum("nr70")
	if !ok || mom <= 0 {
		t.Errorf("momentum = %v, %v (reputation improved)", mom, ok)
	}
	if subs := tr.Subjects(); len(subs) != 1 || subs[0] != "nr70" {
		t.Errorf("subjects = %v", subs)
	}
}

func TestTrendIgnoresUndatedAndForeignAnnotations(t *testing.T) {
	st := store.New(1)
	e := &store.Entity{ID: "a", Text: "t"} // no date
	e.Annotate(store.Annotation{Miner: "sentiment", Type: "polarity", Key: "x", Value: "+"})
	put(t, st, e)
	e2 := &store.Entity{ID: "b", Date: "2004-03-01", Text: "t"}
	e2.Annotate(store.Annotation{Miner: "geo", Type: "place", Key: "texas"})
	put(t, st, e2)
	tr := &Trend{}
	if err := tr.Run(st); err != nil {
		t.Fatal(err)
	}
	if len(tr.Subjects()) != 0 {
		t.Errorf("subjects = %v", tr.Subjects())
	}
	if _, ok := tr.Momentum("x"); ok {
		t.Error("momentum without data should report !ok")
	}
}

// --- KMeans ---

func TestKMeansSeparatesDomains(t *testing.T) {
	st := store.New(2)
	cameraDocs := []string{
		"camera lens zoom battery flash picture",
		"battery zoom camera flash viewfinder picture",
		"lens picture camera zoom battery menu",
	}
	oilDocs := []string{
		"oil refinery pipeline crude barrel drilling",
		"pipeline crude oil barrel refinery exploration",
		"drilling oil crude pipeline refinery energy",
	}
	for i, txt := range cameraDocs {
		put(t, st, &store.Entity{ID: fmt.Sprintf("cam%d", i), Text: txt})
	}
	for i, txt := range oilDocs {
		put(t, st, &store.Entity{ID: fmt.Sprintf("oil%d", i), Text: txt})
	}
	km := &KMeans{K: 2, Seed: 3}
	if err := km.Run(st); err != nil {
		t.Fatal(err)
	}
	camCluster := km.Cluster("cam0")
	oilCluster := km.Cluster("oil0")
	if camCluster == oilCluster {
		t.Fatalf("domains not separated: %v vs %v", camCluster, oilCluster)
	}
	for i := 1; i < 3; i++ {
		if km.Cluster(fmt.Sprintf("cam%d", i)) != camCluster {
			t.Errorf("cam%d in wrong cluster", i)
		}
		if km.Cluster(fmt.Sprintf("oil%d", i)) != oilCluster {
			t.Errorf("oil%d in wrong cluster", i)
		}
	}
	sizes := km.Sizes()
	if sizes[camCluster] != 3 || sizes[oilCluster] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	tops := km.TopTerms(oilCluster)
	found := false
	for _, term := range tops {
		if term == "oil" || term == "crude" || term == "pipeline" {
			found = true
		}
	}
	if !found {
		t.Errorf("oil cluster top terms = %v", tops)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	st := store.New(2)
	for i := 0; i < 12; i++ {
		put(t, st, &store.Entity{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("token%d shared words here", i%3)})
	}
	a := &KMeans{K: 3, Seed: 7}
	b := &KMeans{K: 3, Seed: 7}
	if err := a.Run(st); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("d%d", i)
		if a.Cluster(id) != b.Cluster(id) {
			t.Fatalf("nondeterministic assignment for %s", id)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	km := &KMeans{K: 3}
	if err := km.Run(store.New(1)); err != nil {
		t.Fatal(err)
	}
	if km.Cluster("missing") != -1 {
		t.Error("unknown doc should be -1")
	}
	// K larger than corpus clamps.
	st := store.New(1)
	put(t, st, &store.Entity{ID: "only", Text: "some words here"})
	km2 := &KMeans{K: 5}
	if err := km2.Run(st); err != nil {
		t.Fatal(err)
	}
	if km2.Cluster("only") != 0 {
		t.Errorf("cluster = %d", km2.Cluster("only"))
	}
	if km.TopTerms(99) != nil {
		t.Error("out-of-range cluster should be nil")
	}
}

// --- integration: all corpus miners run via the cluster pipeline ---

func TestCorpusMinersRunInPipeline(t *testing.T) {
	st := store.New(4)
	for i := 0; i < 12; i++ {
		put(t, st, &store.Entity{
			ID:   fmt.Sprintf("d%02d", i),
			URL:  "http://host.example/p",
			Date: fmt.Sprintf("2004-%02d-01", 1+i%12),
			Text: fmt.Sprintf("Document %d talks about Texas oil production near the coast. Footer line.", i),
		})
	}
	c := cluster.New(st, 2)
	agg := &AggregateStats{}
	dd := &DuplicateDetector{}
	td := &TemplateDetector{}
	pr := &PageRank{}
	_, err := c.RunPipeline(
		[]cluster.EntityMiner{NewGeoContext()},
		[]cluster.CorpusMiner{agg, dd, td, pr},
	)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Documents != 12 {
		t.Errorf("agg docs = %d", agg.Documents)
	}
	if td.TemplateCount("host.example") == 0 {
		t.Error("footer not detected as template")
	}
	e, _ := st.Get("d00")
	if len(Places(e)) == 0 {
		t.Error("geo miner did not annotate")
	}
}
