package miners

import (
	"sort"

	"webfountain/internal/store"
)

// PageRank is the corpus-level link-analysis miner: the classic power
// iteration over the entity link graph, with damping and dangling-mass
// redistribution.
type PageRank struct {
	// Damping is the random-jump complement (default 0.85).
	Damping float64
	// MaxIterations bounds the power iteration (default 50).
	MaxIterations int
	// Epsilon is the L1 convergence threshold (default 1e-8).
	Epsilon float64

	scores map[string]float64
	iters  int
}

// Name implements cluster.CorpusMiner.
func (p *PageRank) Name() string { return "pagerank" }

func (p *PageRank) defaults() {
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	if p.MaxIterations == 0 {
		p.MaxIterations = 50
	}
	if p.Epsilon == 0 {
		p.Epsilon = 1e-8
	}
}

// Run implements cluster.CorpusMiner: computes scores over the link graph
// of the whole store. Links to unknown IDs are ignored.
func (p *PageRank) Run(st *store.Store) error {
	p.defaults()
	ids := st.IDs()
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	out := make([][]int, len(ids))
	err := forEach(st, func(e *store.Entity) error {
		i := idx[e.ID]
		for _, l := range e.Links {
			if j, ok := idx[l]; ok && j != i {
				out[i] = append(out[i], j)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	n := len(ids)
	p.scores = make(map[string]float64, n)
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for p.iters = 0; p.iters < p.MaxIterations; p.iters++ {
		base := (1 - p.Damping) / float64(n)
		dangling := 0.0
		for i := range next {
			next[i] = base
		}
		for i, links := range out {
			if len(links) == 0 {
				dangling += rank[i]
				continue
			}
			share := p.Damping * rank[i] / float64(len(links))
			for _, j := range links {
				next[j] += share
			}
		}
		// Dangling mass spreads uniformly.
		spread := p.Damping * dangling / float64(n)
		delta := 0.0
		for i := range next {
			next[i] += spread
			d := next[i] - rank[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, next = next, rank
		if delta < p.Epsilon {
			p.iters++
			break
		}
	}
	for i, id := range ids {
		p.scores[id] = rank[i]
	}
	return nil
}

// Score returns a document's rank (0 when unknown).
func (p *PageRank) Score(id string) float64 { return p.scores[id] }

// Iterations returns how many power iterations the last Run used.
func (p *PageRank) Iterations() int { return p.iters }

// Ranked is one document with its score.
type Ranked struct {
	ID    string
	Score float64
}

// Top returns the n highest-ranked documents.
func (p *PageRank) Top(n int) []Ranked {
	out := make([]Ranked, 0, len(p.scores))
	for id, s := range p.scores {
		out = append(out, Ranked{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
