package miners

import (
	"hash/fnv"
	"sort"

	"webfountain/internal/store"
)

// DuplicateDetector is the corpus-level near-duplicate miner: documents
// are shingled into overlapping k-grams, compressed into minhash
// signatures, and grouped via locality-sensitive banding; candidate pairs
// whose estimated Jaccard similarity clears the threshold are merged into
// duplicate clusters.
type DuplicateDetector struct {
	// ShingleSize is the k-gram length in words (default 4).
	ShingleSize int
	// Signature is the number of minhash functions (default 64; must be
	// divisible by Bands).
	Signature int
	// Bands is the LSH band count (default 16).
	Bands int
	// Threshold is the minimum estimated Jaccard similarity for two
	// documents to count as duplicates (default 0.8).
	Threshold float64

	clusters [][]string
}

// Name implements cluster.CorpusMiner.
func (d *DuplicateDetector) Name() string { return "dedup" }

func (d *DuplicateDetector) defaults() {
	if d.ShingleSize == 0 {
		d.ShingleSize = 4
	}
	if d.Signature == 0 {
		d.Signature = 64
	}
	if d.Bands == 0 {
		d.Bands = 16
	}
	if d.Threshold == 0 {
		d.Threshold = 0.8
	}
}

// Run implements cluster.CorpusMiner: computes duplicate clusters over the
// whole store.
func (d *DuplicateDetector) Run(st *store.Store) error {
	d.defaults()
	type doc struct {
		id  string
		sig []uint32
	}
	var docs []doc
	err := forEach(st, func(e *store.Entity) error {
		sig := d.signature(e.Text)
		if sig != nil {
			docs = append(docs, doc{id: e.ID, sig: sig})
		}
		return nil
	})
	if err != nil {
		return err
	}

	// LSH banding: documents sharing any band hash are candidates.
	parent := make(map[string]string, len(docs))
	for _, dc := range docs {
		parent[dc.id] = dc.id
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	rows := d.Signature / d.Bands
	buckets := map[uint64][]int{}
	for i, dc := range docs {
		for band := 0; band < d.Bands; band++ {
			h := fnv.New64a()
			var buf [4]byte
			buf[0] = byte(band)
			h.Write(buf[:1])
			for r := 0; r < rows; r++ {
				v := dc.sig[band*rows+r]
				buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
				h.Write(buf[:])
			}
			buckets[h.Sum64()] = append(buckets[h.Sum64()], i)
		}
	}
	for _, members := range buckets {
		for i := 1; i < len(members); i++ {
			a, b := docs[members[0]], docs[members[i]]
			if estimateJaccard(a.sig, b.sig) >= d.Threshold {
				union(a.id, b.id)
			}
		}
	}

	groups := map[string][]string{}
	for _, dc := range docs {
		root := find(dc.id)
		groups[root] = append(groups[root], dc.id)
	}
	d.clusters = nil
	for _, g := range groups {
		if len(g) > 1 {
			sort.Strings(g)
			d.clusters = append(d.clusters, g)
		}
	}
	sort.Slice(d.clusters, func(i, j int) bool { return d.clusters[i][0] < d.clusters[j][0] })
	return nil
}

// Clusters returns the duplicate clusters found by the last Run, each
// sorted, clusters ordered by first member.
func (d *DuplicateDetector) Clusters() [][]string { return d.clusters }

// signature computes the minhash signature of a text (nil for texts
// shorter than one shingle).
func (d *DuplicateDetector) signature(text string) []uint32 {
	ws := words(text)
	if len(ws) < d.ShingleSize {
		return nil
	}
	sig := make([]uint32, d.Signature)
	for i := range sig {
		sig[i] = ^uint32(0)
	}
	for i := 0; i+d.ShingleSize <= len(ws); i++ {
		base := fnv.New32a()
		for k := 0; k < d.ShingleSize; k++ {
			base.Write([]byte(ws[i+k]))
			base.Write([]byte{' '})
		}
		h := base.Sum32()
		// Derive the family of hash functions from one FNV value: the
		// classic (a*h + b) universal-hash trick with fixed odd constants.
		for j := range sig {
			v := h*(2*uint32(j)+1) + uint32(j)*0x9e3779b9
			if v < sig[j] {
				sig[j] = v
			}
		}
	}
	return sig
}

// estimateJaccard is the fraction of agreeing signature positions.
func estimateJaccard(a, b []uint32) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}
