package miners

import (
	"sort"
	"strings"

	"webfountain/internal/store"
)

// Trend is the corpus-level trending miner: it buckets the sentiment
// annotations written by the sentiment miner by month and reports how a
// subject's sentiment moves over time — the market-trend tracking of the
// paper's reputation management application.
type Trend struct {
	// SentimentMiner is the annotation name to consume (default
	// "sentiment").
	SentimentMiner string

	// series maps subject -> month ("2004-07") -> counts.
	series map[string]map[string]*MonthCounts
}

// MonthCounts aggregates one subject-month.
type MonthCounts struct {
	Positive, Negative int
}

// Share returns the positive share of the month (0 when empty).
func (m MonthCounts) Share() float64 {
	if m.Positive+m.Negative == 0 {
		return 0
	}
	return float64(m.Positive) / float64(m.Positive+m.Negative)
}

// Name implements cluster.CorpusMiner.
func (t *Trend) Name() string { return "trend" }

// Run implements cluster.CorpusMiner: scans entities for sentiment
// annotations and buckets them by the entity's month.
func (t *Trend) Run(st *store.Store) error {
	miner := t.SentimentMiner
	if miner == "" {
		miner = "sentiment"
	}
	t.series = map[string]map[string]*MonthCounts{}
	return forEach(st, func(e *store.Entity) error {
		month := monthOf(e.Date)
		if month == "" {
			return nil
		}
		for _, a := range e.AnnotationsBy(miner) {
			if a.Type != "polarity" {
				continue
			}
			// Subjects are case-insensitive, matching the sentiment
			// index: "Aurora" annotations and an "aurora" query meet.
			key := strings.ToLower(a.Key)
			bySubject, ok := t.series[key]
			if !ok {
				bySubject = map[string]*MonthCounts{}
				t.series[key] = bySubject
			}
			mc, ok := bySubject[month]
			if !ok {
				mc = &MonthCounts{}
				bySubject[month] = mc
			}
			switch a.Value {
			case "+":
				mc.Positive++
			case "-":
				mc.Negative++
			}
		}
		return nil
	})
}

// monthOf extracts "YYYY-MM" from a "YYYY-MM-DD" date ("" if malformed).
func monthOf(date string) string {
	if len(date) < 7 || date[4] != '-' {
		return ""
	}
	return date[:7]
}

// MonthPoint is one month of a subject's sentiment series.
type MonthPoint struct {
	Month string
	MonthCounts
}

// Series returns a subject's sentiment by month, chronologically. The
// subject is case-insensitive.
func (t *Trend) Series(subject string) []MonthPoint {
	bySubject := t.series[strings.ToLower(subject)]
	out := make([]MonthPoint, 0, len(bySubject))
	for m, c := range bySubject {
		out = append(out, MonthPoint{Month: m, MonthCounts: *c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month < out[j].Month })
	return out
}

// Subjects returns every subject with trend data, sorted.
func (t *Trend) Subjects() []string {
	out := make([]string, 0, len(t.series))
	for s := range t.series {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Momentum returns the change in positive share between the first and
// second half of a subject's series (positive = improving reputation),
// and false when there is not enough data to split.
func (t *Trend) Momentum(subject string) (float64, bool) {
	pts := t.Series(subject)
	if len(pts) < 2 {
		return 0, false
	}
	mid := len(pts) / 2
	early, late := MonthCounts{}, MonthCounts{}
	for _, p := range pts[:mid] {
		early.Positive += p.Positive
		early.Negative += p.Negative
	}
	for _, p := range pts[mid:] {
		late.Positive += p.Positive
		late.Negative += p.Negative
	}
	if early.Positive+early.Negative == 0 || late.Positive+late.Negative == 0 {
		return 0, false
	}
	return late.Share() - early.Share(), true
}
