package miners

import (
	"math"
	"math/rand"
	"sort"

	"webfountain/internal/stats"
	"webfountain/internal/store"
)

// KMeans is the corpus-level clustering miner: spherical k-means over
// TF-IDF document vectors with deterministic k-means++ seeding.
type KMeans struct {
	// K is the cluster count (default 4).
	K int
	// MaxIterations bounds Lloyd iterations (default 25).
	MaxIterations int
	// Seed makes the k-means++ initialization deterministic.
	Seed int64

	assign map[string]int
	tops   [][]string
	iters  int
}

// Name implements cluster.CorpusMiner.
func (k *KMeans) Name() string { return "kmeans" }

func (k *KMeans) defaults() {
	if k.K == 0 {
		k.K = 4
	}
	if k.MaxIterations == 0 {
		k.MaxIterations = 25
	}
}

// sparse is a unit-normalized sparse vector.
type sparse map[string]float64

func (v sparse) dot(u sparse) float64 {
	if len(u) < len(v) {
		v, u = u, v
	}
	s := 0.0
	for t, x := range v {
		s += x * u[t]
	}
	return s
}

func (v sparse) normalize() {
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for t := range v {
		v[t] /= n
	}
}

// Run implements cluster.CorpusMiner.
func (k *KMeans) Run(st *store.Store) error {
	k.defaults()
	// Pass 1: document frequencies.
	df := map[string]int{}
	var ids []string
	var docWords [][]string
	err := forEach(st, func(e *store.Entity) error {
		ws := words(e.Text)
		ids = append(ids, e.ID)
		docWords = append(docWords, ws)
		seen := map[string]bool{}
		for _, w := range ws {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	n := len(ids)
	k.assign = make(map[string]int, n)
	if n == 0 {
		k.tops = nil
		return nil
	}
	if k.K > n {
		k.K = n
	}

	// TF-IDF vectors, unit length.
	vecs := make([]sparse, n)
	for i, ws := range docWords {
		v := sparse{}
		counts := map[string]int{}
		for _, w := range ws {
			counts[w]++
		}
		for t, c := range counts {
			w := stats.TFIDF(c, len(ws), df[t], n)
			if w > 0 {
				v[t] = w
			}
		}
		v.normalize()
		vecs[i] = v
	}

	centroids := k.seedCentroids(vecs)
	assign := make([]int, n)
	for k.iters = 0; k.iters < k.MaxIterations; k.iters++ {
		changed := false
		for i, v := range vecs {
			best, bestSim := assign[i], -1.0
			for c, cen := range centroids {
				if sim := v.dot(cen); sim > bestSim {
					best, bestSim = c, sim
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed && k.iters > 0 {
			break
		}
		// Recompute centroids.
		sums := make([]sparse, k.K)
		for c := range sums {
			sums[c] = sparse{}
		}
		for i, v := range vecs {
			cen := sums[assign[i]]
			for t, x := range v {
				cen[t] += x
			}
		}
		for c := range sums {
			sums[c].normalize()
			if len(sums[c]) > 0 {
				centroids[c] = sums[c]
			}
		}
	}

	for i, id := range ids {
		k.assign[id] = assign[i]
	}
	// Top terms per cluster from the final centroids.
	k.tops = make([][]string, k.K)
	for c, cen := range centroids {
		type tw struct {
			t string
			w float64
		}
		var list []tw
		for t, w := range cen {
			list = append(list, tw{t, w})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].w != list[j].w {
				return list[i].w > list[j].w
			}
			return list[i].t < list[j].t
		})
		for i := 0; i < 8 && i < len(list); i++ {
			k.tops[c] = append(k.tops[c], list[i].t)
		}
	}
	return nil
}

// seedCentroids is deterministic k-means++: the first centroid is the
// first document; each next centroid is the document farthest (in cosine
// distance) from its nearest chosen centroid, with the Seed breaking
// exact ties.
func (k *KMeans) seedCentroids(vecs []sparse) []sparse {
	r := rand.New(rand.NewSource(k.Seed + 1))
	centroids := make([]sparse, 0, k.K)
	first := r.Intn(len(vecs))
	centroids = append(centroids, clone(vecs[first]))
	for len(centroids) < k.K {
		bestIdx, bestDist := 0, -1.0
		for i, v := range vecs {
			nearest := -1.0
			for _, c := range centroids {
				if sim := v.dot(c); sim > nearest {
					nearest = sim
				}
			}
			dist := 1 - nearest
			if dist > bestDist {
				bestIdx, bestDist = i, dist
			}
		}
		centroids = append(centroids, clone(vecs[bestIdx]))
	}
	return centroids
}

func clone(v sparse) sparse {
	out := make(sparse, len(v))
	for t, x := range v {
		out[t] = x
	}
	return out
}

// Cluster returns the cluster index of a document (-1 when unknown).
func (k *KMeans) Cluster(id string) int {
	c, ok := k.assign[id]
	if !ok {
		return -1
	}
	return c
}

// TopTerms returns the highest-weight centroid terms of a cluster.
func (k *KMeans) TopTerms(cluster int) []string {
	if cluster < 0 || cluster >= len(k.tops) {
		return nil
	}
	return k.tops[cluster]
}

// Sizes returns the number of documents per cluster.
func (k *KMeans) Sizes() []int {
	out := make([]int, k.K)
	for _, c := range k.assign {
		out[c]++
	}
	return out
}
