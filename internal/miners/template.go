package miners

import (
	"hash/fnv"

	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

// TemplateDetector is the corpus-level boilerplate miner: a sentence that
// recurs across a large fraction of a host's pages is template material
// (navigation, legal footers, injected ads) rather than content, and
// downstream miners should ignore it. This follows the frequency-based
// idea of the template-detection work the paper builds on.
type TemplateDetector struct {
	// MinDocs is the minimum number of documents a host needs before
	// template detection applies to it (default 5).
	MinDocs int
	// MinShare is the fraction of a host's documents a sentence must
	// appear in to count as template (default 0.5).
	MinShare float64

	// templates maps host -> sentence hash -> true.
	templates map[string]map[uint64]bool
	hostDocs  map[string]int
}

// Name implements cluster.CorpusMiner.
func (t *TemplateDetector) Name() string { return "template" }

func (t *TemplateDetector) defaults() {
	if t.MinDocs == 0 {
		t.MinDocs = 5
	}
	if t.MinShare == 0 {
		t.MinShare = 0.5
	}
}

// Run implements cluster.CorpusMiner: computes per-host template sentence
// sets.
func (t *TemplateDetector) Run(st *store.Store) error {
	t.defaults()
	tk := tokenize.New()
	counts := map[string]map[uint64]int{}
	t.hostDocs = map[string]int{}
	err := forEach(st, func(e *store.Entity) error {
		host := e.Host()
		if host == "" {
			return nil
		}
		t.hostDocs[host]++
		hc, ok := counts[host]
		if !ok {
			hc = map[uint64]int{}
			counts[host] = hc
		}
		seen := map[uint64]bool{}
		for _, s := range tk.Sentences(e.Text) {
			h := sentenceHash(s)
			if !seen[h] {
				seen[h] = true
				hc[h]++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.templates = map[string]map[uint64]bool{}
	for host, hc := range counts {
		n := t.hostDocs[host]
		if n < t.MinDocs {
			continue
		}
		set := map[uint64]bool{}
		for h, c := range hc {
			if float64(c) >= t.MinShare*float64(n) {
				set[h] = true
			}
		}
		if len(set) > 0 {
			t.templates[host] = set
		}
	}
	return nil
}

// IsTemplate reports whether a sentence of a host's page is boilerplate.
func (t *TemplateDetector) IsTemplate(host string, s tokenize.Sentence) bool {
	set, ok := t.templates[host]
	if !ok {
		return false
	}
	return set[sentenceHash(s)]
}

// ContentSentences filters an entity's sentences down to non-template
// content.
func (t *TemplateDetector) ContentSentences(e *store.Entity) []tokenize.Sentence {
	host := e.Host()
	var out []tokenize.Sentence
	for _, s := range tokenize.New().Sentences(e.Text) {
		if !t.IsTemplate(host, s) {
			out = append(out, s)
		}
	}
	return out
}

// TemplateCount returns the number of template sentences detected for a
// host.
func (t *TemplateDetector) TemplateCount(host string) int {
	return len(t.templates[host])
}

// sentenceHash hashes the lower-cased word and number sequence of a
// sentence (numbers matter: "visitor 4021" footers differing only by a
// counter are template, but content sentences with distinct figures are
// not — punctuation-only variation is ignored).
func sentenceHash(s tokenize.Sentence) uint64 {
	h := fnv.New64a()
	for _, tok := range s.Tokens {
		if tok.Kind == tokenize.Word || tok.Kind == tokenize.Number {
			h.Write([]byte(tok.Lower()))
			h.Write([]byte{' '})
		}
	}
	return h.Sum64()
}
