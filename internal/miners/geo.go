package miners

import (
	"sort"
	"strings"

	"webfountain/internal/spotter"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

// gazetteer maps place variants to a canonical place and its region. It
// stands in for the geographic database of the paper's geographic context
// discoverer [McCurley 2002].
type gazetteerEntry struct {
	canonical string
	region    string
	variants  []string
}

var gazetteer = []gazetteerEntry{
	{"United States", "north-america", []string{"United States", "U.S.", "USA", "America"}},
	{"Canada", "north-america", []string{"Canada"}},
	{"Mexico", "north-america", []string{"Mexico"}},
	{"United Kingdom", "europe", []string{"United Kingdom", "U.K.", "Britain", "England"}},
	{"Germany", "europe", []string{"Germany"}},
	{"France", "europe", []string{"France"}},
	{"Italy", "europe", []string{"Italy"}},
	{"Spain", "europe", []string{"Spain"}},
	{"Norway", "europe", []string{"Norway"}},
	{"Netherlands", "europe", []string{"Netherlands", "Holland"}},
	{"Russia", "europe", []string{"Russia"}},
	{"Japan", "asia", []string{"Japan", "Tokyo"}},
	{"China", "asia", []string{"China", "Beijing", "Shanghai"}},
	{"India", "asia", []string{"India"}},
	{"Singapore", "asia", []string{"Singapore"}},
	{"Saudi Arabia", "middle-east", []string{"Saudi Arabia", "Riyadh"}},
	{"Kuwait", "middle-east", []string{"Kuwait"}},
	{"Nigeria", "africa", []string{"Nigeria"}},
	{"Brazil", "south-america", []string{"Brazil"}},
	{"Venezuela", "south-america", []string{"Venezuela"}},
	{"Australia", "oceania", []string{"Australia", "Sydney"}},
	{"New York", "north-america", []string{"New York", "New York City"}},
	{"California", "north-america", []string{"California", "San Jose", "San Francisco", "Los Angeles"}},
	{"Texas", "north-america", []string{"Texas", "Houston", "Dallas"}},
	{"Alaska", "north-america", []string{"Alaska"}},
	{"London", "europe", []string{"London"}},
	{"Paris", "europe", []string{"Paris"}},
	{"Gulf of Mexico", "north-america", []string{"Gulf of Mexico"}},
	{"North Sea", "europe", []string{"North Sea"}},
}

// GeoMinerName is the annotation name the geographic miner writes.
const GeoMinerName = "geo"

// GeoContext is the geographic context discoverer: an entity-level miner
// that spots gazetteer places in the text and annotates each entity with
// the places and its dominant region.
type GeoContext struct {
	sp      *spotter.Spotter
	regions map[string]string // place ID -> region
	tk      *tokenize.Tokenizer
}

// NewGeoContext compiles the embedded gazetteer.
func NewGeoContext() *GeoContext {
	sets := make([]spotter.SynonymSet, 0, len(gazetteer))
	regions := make(map[string]string, len(gazetteer))
	for _, g := range gazetteer {
		id := strings.ToLower(g.canonical)
		sets = append(sets, spotter.SynonymSet{ID: id, Canonical: g.canonical, Terms: g.variants})
		regions[id] = g.region
	}
	return &GeoContext{sp: spotter.New(sets), regions: regions, tk: tokenize.New()}
}

// Name implements cluster.EntityMiner.
func (g *GeoContext) Name() string { return GeoMinerName }

// Process implements cluster.EntityMiner: one "place" annotation per spot
// plus a single "region" annotation for the dominant region.
func (g *GeoContext) Process(e *store.Entity) ([]store.Annotation, error) {
	sents := g.tk.Sentences(e.Text)
	var anns []store.Annotation
	regionCounts := map[string]int{}
	for _, s := range sents {
		for _, sp := range g.sp.SpotTokens(s.Tokens) {
			anns = append(anns, store.Annotation{
				Type:     "place",
				Key:      sp.SetID,
				Sentence: s.Index,
				Start:    sp.Start,
				End:      sp.End,
			})
			regionCounts[g.regions[sp.SetID]]++
		}
	}
	if region, n := dominant(regionCounts); n > 0 {
		anns = append(anns, store.Annotation{Type: "region", Key: region, Sentence: -1})
	}
	return anns, nil
}

// Places extracts the distinct places a processed entity mentions, from
// its annotations.
func Places(e *store.Entity) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range e.AnnotationsBy(GeoMinerName) {
		if a.Type == "place" && !seen[a.Key] {
			seen[a.Key] = true
			out = append(out, a.Key)
		}
	}
	sort.Strings(out)
	return out
}

// Region returns a processed entity's dominant region ("" if none).
func Region(e *store.Entity) string {
	for _, a := range e.AnnotationsBy(GeoMinerName) {
		if a.Type == "region" {
			return a.Key
		}
	}
	return ""
}

func dominant(counts map[string]int) (string, int) {
	best, bestN := "", 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best, bestN
}
