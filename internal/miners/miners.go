// Package miners implements the WebFountain platform's standard miners —
// the ones the paper names as examples of the two miner classes:
//
// Entity-level (process one entity in isolation):
//
//   - GeoContext: the geographic context discoverer (gazetteer spotting).
//
// Corpus-level (need all or part of the collection):
//
//   - AggregateStats: corpus-wide statistics.
//   - DuplicateDetector: near-duplicate detection via minhash.
//   - TemplateDetector: per-host boilerplate detection.
//   - PageRank: link-graph ranking.
//   - Trend: sentiment trending over time.
//   - KMeans: document clustering over TF-IDF vectors.
//
// The sentiment miner (package sentiment, surfaced through the public
// webfountain API) is itself an entity-level miner and composes with
// these: Trend, for example, consumes the annotations the sentiment miner
// writes.
package miners

import (
	"strings"

	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

// words lower-cases the word tokens of a text.
func words(text string) []string {
	toks := tokenize.New().Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == tokenize.Word {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

// forEach iterates a store, panicking never: iteration errors from the
// callback abort and are returned.
func forEach(st *store.Store, fn func(*store.Entity) error) error {
	return st.ForEach(fn)
}
