package miners

import (
	"sort"

	"webfountain/internal/store"
)

// AggregateStats is the corpus-level statistics miner: document counts,
// token volume, vocabulary size, source breakdown and the most frequent
// terms.
type AggregateStats struct {
	// TopK is how many top terms to retain (default 20).
	TopK int

	// Documents and Tokens are corpus totals.
	Documents int
	Tokens    int
	// Vocabulary is the number of distinct (lower-cased) word types.
	Vocabulary int
	// AvgDocTokens is the mean document length in tokens.
	AvgDocTokens float64
	// BySource counts documents per acquisition channel.
	BySource map[string]int
	// TopTerms are the most frequent terms, ties broken alphabetically.
	TopTerms []TermCount
}

// TermCount is a term with its corpus frequency.
type TermCount struct {
	Term  string
	Count int
}

// Name implements cluster.CorpusMiner.
func (a *AggregateStats) Name() string { return "aggstats" }

// Run implements cluster.CorpusMiner.
func (a *AggregateStats) Run(st *store.Store) error {
	if a.TopK == 0 {
		a.TopK = 20
	}
	a.Documents, a.Tokens, a.Vocabulary = 0, 0, 0
	a.BySource = map[string]int{}
	freq := map[string]int{}
	err := forEach(st, func(e *store.Entity) error {
		a.Documents++
		a.BySource[e.Source]++
		for _, w := range words(e.Text) {
			a.Tokens++
			freq[w]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	a.Vocabulary = len(freq)
	if a.Documents > 0 {
		a.AvgDocTokens = float64(a.Tokens) / float64(a.Documents)
	}
	a.TopTerms = a.TopTerms[:0]
	for t, c := range freq {
		a.TopTerms = append(a.TopTerms, TermCount{Term: t, Count: c})
	}
	sort.Slice(a.TopTerms, func(i, j int) bool {
		if a.TopTerms[i].Count != a.TopTerms[j].Count {
			return a.TopTerms[i].Count > a.TopTerms[j].Count
		}
		return a.TopTerms[i].Term < a.TopTerms[j].Term
	})
	if len(a.TopTerms) > a.TopK {
		a.TopTerms = a.TopTerms[:a.TopK]
	}
	return nil
}
