package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestContingencyValid(t *testing.T) {
	if !(Contingency{10, 5, 90, 95}).Valid() {
		t.Error("plain table should be valid")
	}
	if (Contingency{-1, 5, 90, 95}).Valid() {
		t.Error("negative count should be invalid")
	}
	if (Contingency{0, 0, 0, 0}).Valid() {
		t.Error("empty table should be invalid")
	}
}

func TestRates(t *testing.T) {
	c := Contingency{C11: 30, C12: 10, C21: 70, C22: 90}
	r1, r2, r := c.Rates()
	if math.Abs(r1-0.75) > 1e-9 {
		t.Errorf("r1 = %v, want 0.75", r1)
	}
	if math.Abs(r2-0.4375) > 1e-9 {
		t.Errorf("r2 = %v, want 0.4375", r2)
	}
	if math.Abs(r-0.5) > 1e-9 {
		t.Errorf("r = %v, want 0.5", r)
	}
}

func TestLLRZeroWhenTermNotCharacteristic(t *testing.T) {
	// Term equally frequent in both collections: r2 == r1 -> 0.
	c := Contingency{C11: 10, C12: 10, C21: 90, C22: 90}
	if got := c.LogLikelihoodRatio(); got != 0 {
		t.Errorf("balanced table LLR = %v, want 0", got)
	}
	// Term MORE frequent in D-: also 0 under the one-sided rule.
	c = Contingency{C11: 1, C12: 50, C21: 99, C22: 50}
	if got := c.LogLikelihoodRatio(); got != 0 {
		t.Errorf("anti-correlated LLR = %v, want 0", got)
	}
}

func TestLLRLargeForCharacteristicTerm(t *testing.T) {
	// Term appears in 40% of 100 on-topic docs and 1% of 1000 off-topic.
	strong := Contingency{C11: 40, C12: 10, C21: 60, C22: 990}
	weak := Contingency{C11: 5, C12: 30, C21: 95, C22: 970}
	s, w := strong.LogLikelihoodRatio(), weak.LogLikelihoodRatio()
	if s <= 0 {
		t.Fatalf("strong LLR = %v, want > 0", s)
	}
	if s <= w {
		t.Errorf("strong (%v) should exceed weak (%v)", s, w)
	}
	if s < ChiSquare1CriticalValues[0.999] {
		t.Errorf("strong LLR %v should clear the 99.9%% threshold", s)
	}
}

func TestLLRMonotonicInEvidence(t *testing.T) {
	// More on-topic occurrences (with everything else fixed) must not
	// decrease the statistic.
	prev := 0.0
	for c11 := 5.0; c11 <= 50; c11 += 5 {
		c := Contingency{C11: c11, C12: 5, C21: 100 - c11, C22: 995}
		got := c.LogLikelihoodRatio()
		if got < prev {
			t.Errorf("LLR decreased from %v to %v at C11=%v", prev, got, c11)
		}
		prev = got
	}
}

func TestLLRInvalidTable(t *testing.T) {
	if got := (Contingency{-1, 1, 1, 1}).LogLikelihoodRatio(); got != 0 {
		t.Errorf("invalid table LLR = %v, want 0", got)
	}
}

func TestTFIDF(t *testing.T) {
	if got := TF(5, 100); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("TF = %v", got)
	}
	if got := TF(5, 0); got != 0 {
		t.Errorf("TF with empty doc = %v", got)
	}
	rare := IDF(1, 1000)
	common := IDF(900, 1000)
	if rare <= common {
		t.Errorf("rare IDF (%v) should exceed common IDF (%v)", rare, common)
	}
	if got := IDF(0, 0); got != 0 {
		t.Errorf("IDF with no docs = %v", got)
	}
	if TFIDF(5, 100, 1, 1000) <= TFIDF(5, 100, 900, 1000) {
		t.Error("TFIDF should favor rare terms")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

// Property: LLR is always finite and non-negative for arbitrary tables.
func TestQuickLLRFiniteNonNegative(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		tab := Contingency{float64(a), float64(b), float64(c), float64(d)}
		got := tab.LogLikelihoodRatio()
		return got >= 0 && !math.IsNaN(got) && !math.IsInf(got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: swapping the collections (so the term is characteristic of D-
// instead) always yields 0 under the one-sided rule when the original was
// positive.
func TestQuickLLROneSided(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		tab := Contingency{float64(a), float64(b), float64(c), float64(d)}
		swapped := Contingency{tab.C12, tab.C11, tab.C22, tab.C21}
		if tab.LogLikelihoodRatio() > 0 && swapped.LogLikelihoodRatio() > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
