// Package stats provides the statistical machinery the miners rely on:
// Dunning's log-likelihood ratio test (used by the feature term selector),
// TF·IDF weighting (used by the disambiguator) and contingency-table
// helpers.
package stats

import "math"

// Contingency is the 2x2 document-count table of the paper's Table 1 for
// one candidate term:
//
//	            D+      D-
//	term        C11     C12
//	no term     C21     C22
//
// where D+ is the on-topic collection and D- the off-topic collection.
type Contingency struct {
	C11, C12, C21, C22 float64
}

// Valid reports whether all counts are non-negative and the table is
// non-degenerate (both collections non-empty).
func (c Contingency) Valid() bool {
	if c.C11 < 0 || c.C12 < 0 || c.C21 < 0 || c.C22 < 0 {
		return false
	}
	return c.C11+c.C21 > 0 && c.C12+c.C22 > 0
}

// Rates returns r1 = C11/(C11+C12), r2 = C21/(C21+C22) and the pooled
// r = (C11+C21)/total, as defined in the paper's Table 1.
//
// Note the paper's r1 conditions on the term row and r2 on the no-term
// row; the likelihood ratio below follows the paper's Equation 1 exactly.
func (c Contingency) Rates() (r1, r2, r float64) {
	if c.C11+c.C12 > 0 {
		r1 = c.C11 / (c.C11 + c.C12)
	}
	if c.C21+c.C22 > 0 {
		r2 = c.C21 / (c.C21 + c.C22)
	}
	total := c.C11 + c.C12 + c.C21 + c.C22
	if total > 0 {
		r = (c.C11 + c.C21) / total
	}
	return r1, r2, r
}

// LogLikelihoodRatio computes the paper's Equation 1:
//
//	-2 log λ = 2·lr   if r2 < r1
//	           0      if r2 >= r1
//
// with
//
//	lr = (C11+C21)·log r + (C12+C22)·log(1-r)
//	     - C11·log r1 - C12·log(1-r1) - C21·log r2 - C22·log(1-r2)
//
// Under the null hypothesis (the candidate is equally likely in D+ and
// D-), -2 log λ is asymptotically χ²(1)-distributed; large values mean the
// term is characteristic of the on-topic collection. The one-sided guard
// (zero when r2 >= r1) keeps only terms that are *more* frequent in D+.
func (c Contingency) LogLikelihoodRatio() float64 {
	if !c.Valid() {
		return 0
	}
	r1, r2, r := c.Rates()
	if r2 >= r1 {
		return 0
	}
	lr := (c.C11+c.C21)*safeLog(r) + (c.C12+c.C22)*safeLog(1-r) -
		c.C11*safeLog(r1) - c.C12*safeLog(1-r1) -
		c.C21*safeLog(r2) - c.C22*safeLog(1-r2)
	// The paper writes 2·log λ for the statistic -2·log λ; lr above is
	// -log λ, so the statistic is 2·lr. Numerical noise can leave a tiny
	// negative value; clamp.
	v := -2 * lr
	if v < 0 {
		return 0
	}
	return v
}

// safeLog returns log(x), treating log(0) as 0 so that 0·log 0 terms
// vanish, the standard convention for likelihood ratios.
func safeLog(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

// ChiSquare1CriticalValues maps common confidence levels to χ²(1) critical
// values, used to threshold the likelihood ratio.
var ChiSquare1CriticalValues = map[float64]float64{
	0.90:  2.706,
	0.95:  3.841,
	0.99:  6.635,
	0.999: 10.828,
}

// TF computes raw term frequency normalized by document length.
func TF(count, docLen int) float64 {
	if docLen == 0 {
		return 0
	}
	return float64(count) / float64(docLen)
}

// IDF computes the inverse document frequency log(N / df) with add-one
// smoothing on the document frequency.
func IDF(docFreq, numDocs int) float64 {
	if numDocs == 0 {
		return 0
	}
	return math.Log(float64(numDocs) / (1 + float64(docFreq)))
}

// TFIDF combines TF and IDF.
func TFIDF(count, docLen, docFreq, numDocs int) float64 {
	return TF(count, docLen) * IDF(docFreq, numDocs)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}
