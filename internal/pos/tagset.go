// Package pos implements a Penn Treebank part-of-speech tagger.
//
// The paper used the Ratnaparkhi maximum-entropy tagger; that model and
// its training data are unavailable, so this package provides an
// equivalent-contract substitute: a deterministic tagger built from
//
//  1. closed-class word lists (determiners, prepositions, pronouns, ...),
//  2. an embedded open-class lexicon of common English words,
//  3. morphological suffix rules for unknown words, and
//  4. Brill-style contextual repair rules.
//
// Downstream consumers (the chunker, the bBNP feature extractor and the
// sentiment analyzer) depend only on Penn Treebank tags such as NN, JJ,
// VB and DT, which this tagger emits.
package pos

// Tag is a Penn Treebank part-of-speech tag.
type Tag string

// The subset of the Penn Treebank tagset produced by this tagger.
const (
	CC   Tag = "CC"   // coordinating conjunction
	CD   Tag = "CD"   // cardinal number
	DT   Tag = "DT"   // determiner
	EX   Tag = "EX"   // existential there
	FW   Tag = "FW"   // foreign word
	IN   Tag = "IN"   // preposition / subordinating conjunction
	JJ   Tag = "JJ"   // adjective
	JJR  Tag = "JJR"  // adjective, comparative
	JJS  Tag = "JJS"  // adjective, superlative
	MD   Tag = "MD"   // modal
	NN   Tag = "NN"   // noun, singular or mass
	NNS  Tag = "NNS"  // noun, plural
	NNP  Tag = "NNP"  // proper noun, singular
	NNPS Tag = "NNPS" // proper noun, plural
	PDT  Tag = "PDT"  // predeterminer
	POS  Tag = "POS"  // possessive ending
	PRP  Tag = "PRP"  // personal pronoun
	PRPS Tag = "PRP$" // possessive pronoun
	RB   Tag = "RB"   // adverb
	RBR  Tag = "RBR"  // adverb, comparative
	RBS  Tag = "RBS"  // adverb, superlative
	RP   Tag = "RP"   // particle
	TO   Tag = "TO"   // to
	UH   Tag = "UH"   // interjection
	VB   Tag = "VB"   // verb, base form
	VBD  Tag = "VBD"  // verb, past tense
	VBG  Tag = "VBG"  // verb, gerund/present participle
	VBN  Tag = "VBN"  // verb, past participle
	VBP  Tag = "VBP"  // verb, non-3rd person singular present
	VBZ  Tag = "VBZ"  // verb, 3rd person singular present
	WDT  Tag = "WDT"  // wh-determiner
	WP   Tag = "WP"   // wh-pronoun
	WRB  Tag = "WRB"  // wh-adverb
	SYM  Tag = "SYM"  // symbol
	PCT  Tag = "."    // punctuation (collapsed)
)

// IsNoun reports whether the tag is any noun tag (NN, NNS, NNP, NNPS).
func (t Tag) IsNoun() bool { return t == NN || t == NNS || t == NNP || t == NNPS }

// IsProperNoun reports whether the tag is NNP or NNPS.
func (t Tag) IsProperNoun() bool { return t == NNP || t == NNPS }

// IsAdjective reports whether the tag is JJ, JJR or JJS.
func (t Tag) IsAdjective() bool { return t == JJ || t == JJR || t == JJS }

// IsVerb reports whether the tag is any verb tag (VB..VBZ, MD excluded).
func (t Tag) IsVerb() bool {
	switch t {
	case VB, VBD, VBG, VBN, VBP, VBZ:
		return true
	}
	return false
}

// IsAdverb reports whether the tag is RB, RBR or RBS.
func (t Tag) IsAdverb() bool { return t == RB || t == RBR || t == RBS }
