package pos

import (
	"strings"

	"webfountain/internal/tokenize"
)

// TaggedToken pairs a token with its assigned part-of-speech tag.
type TaggedToken struct {
	tokenize.Token
	Tag Tag
}

// Tagger assigns Penn Treebank tags to token streams. The zero value uses
// the embedded lexicon; Extra entries can extend it per instance.
type Tagger struct {
	// Extra maps lower-cased words to tags, consulted before the embedded
	// lexicon. It lets applications pin domain vocabulary.
	Extra map[string]Tag
}

// NewTagger returns a Tagger backed by the embedded lexicon.
func NewTagger() *Tagger { return &Tagger{} }

// Tag tags a full sentence worth of tokens. Tagging is done in two passes:
// a per-token lexical pass followed by contextual repair rules.
func (tg *Tagger) Tag(tokens []tokenize.Token) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, tok := range tokens {
		out[i] = TaggedToken{Token: tok, Tag: tg.lexical(tok, i == 0)}
	}
	applyContextRules(out)
	return out
}

// TagSentence tags the tokens of a tokenize.Sentence.
func (tg *Tagger) TagSentence(s tokenize.Sentence) []TaggedToken {
	return tg.Tag(s.Tokens)
}

// lexical assigns the context-free most likely tag for a token.
func (tg *Tagger) lexical(tok tokenize.Token, first bool) Tag {
	switch tok.Kind {
	case tokenize.Number:
		return CD
	case tokenize.Punct, tokenize.Symbol:
		return PCT
	}
	lower := strings.ToLower(tok.Text)

	// Possessive clitic from the tokenizer ("camera" + "'s"). Verbal "'s"
	// (= is) is repaired contextually when followed by an adjective or
	// determiner; default to POS after nouns, which the context rules use.
	if lower == "'s" {
		return POS
	}
	if t, ok := beForms[lower]; ok && lower != "'s" {
		return t
	}

	if tg.Extra != nil {
		if t, ok := tg.Extra[lower]; ok {
			return t
		}
	}

	switch {
	case lower == "to":
		return TO
	case lower == "there":
		return EX // repaired to RB contextually when not followed by be
	case determiners[lower]:
		return DT
	case modals[lower]:
		return MD
	case possessivePronouns[lower]:
		return PRPS
	case pronouns[lower]:
		return PRP
	case conjunctions[lower]:
		return CC
	case prepositions[lower]:
		return IN
	}
	if t, ok := whWords[lower]; ok {
		return t
	}
	if t, ok := irregularVerbs[lower]; ok {
		return t
	}
	if t, ok := lexicon[lower]; ok {
		return t
	}

	// Unknown word: capitalized non-sentence-initial words are proper
	// nouns; sentence-initial capitalized unknowns are too, since known
	// common words were already matched via their lower-case form.
	if tok.IsCapitalized() {
		if strings.HasSuffix(tok.Text, "s") && len(tok.Text) > 3 && !strings.HasSuffix(lower, "ss") {
			return NNPS
		}
		return NNP
	}
	return suffixTag(lower)
}

// suffixTag guesses a tag for an unknown lower-case word from morphology.
func suffixTag(w string) Tag {
	switch {
	case strings.Contains(w, "-"):
		// Unknown hyphenated compounds are overwhelmingly modifiers in
		// review text ("washed-out", "state-of-the-art").
		return JJ
	case strings.HasSuffix(w, "ly") && len(w) > 4:
		return RB
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return VBG
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return VBN // repaired to VBD contextually after a nominal subject
	case strings.HasSuffix(w, "tion") || strings.HasSuffix(w, "sion") ||
		strings.HasSuffix(w, "ment") || strings.HasSuffix(w, "ness") ||
		strings.HasSuffix(w, "ance") || strings.HasSuffix(w, "ence") ||
		strings.HasSuffix(w, "ship") || strings.HasSuffix(w, "ity") ||
		strings.HasSuffix(w, "ism") || strings.HasSuffix(w, "age") ||
		strings.HasSuffix(w, "ure") || strings.HasSuffix(w, "cy"):
		return NN
	case strings.HasSuffix(w, "ous") || strings.HasSuffix(w, "ful") ||
		strings.HasSuffix(w, "able") || strings.HasSuffix(w, "ible") ||
		strings.HasSuffix(w, "ive") || strings.HasSuffix(w, "ish") ||
		strings.HasSuffix(w, "less") || strings.HasSuffix(w, "ic") ||
		strings.HasSuffix(w, "al") || strings.HasSuffix(w, "ary"):
		return JJ
	case strings.HasSuffix(w, "est") && len(w) > 4:
		return JJS
	case strings.HasSuffix(w, "er") && len(w) > 4:
		// -er is genuinely ambiguous (agent noun vs. comparative); nouns
		// dominate in product text (reviewer, adapter, charger).
		return NN
	case strings.HasSuffix(w, "ies"):
		return NNS
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return NNS
	}
	return NN
}

// applyContextRules runs Brill-style repair rules over a lexically tagged
// sentence, in order. Each rule inspects neighbouring tags and rewrites
// the current one.
func applyContextRules(ts []TaggedToken) {
	n := len(ts)
	at := func(i int) Tag {
		if i < 0 || i >= n {
			return ""
		}
		return ts[i].Tag
	}
	lowerAt := func(i int) string {
		if i < 0 || i >= n {
			return ""
		}
		return strings.ToLower(ts[i].Text)
	}

	for i := 0; i < n; i++ {
		cur := ts[i].Tag
		prev, next := at(i-1), at(i+1)

		switch {
		// "'s" after a noun followed by JJ/DT/VBN reads as "is".
		case cur == POS && (next == JJ || next == JJR || next == JJS || next == DT || next == RB || next == VBG || next == VBN):
			ts[i].Tag = VBZ

		// DT/JJ before a base verb that can be a noun: "the lack", "a break".
		case cur == VB && (prev == DT || prev == JJ || prev == PRPS || prev == POS):
			ts[i].Tag = NN
		case cur == VBZ && (prev == DT || prev == JJ || prev == PRPS || prev == POS):
			// "the takes" is implausible but "the costs" is a plural noun.
			ts[i].Tag = NNS

		// TO or MD before any verb form forces the base form.
		case cur.IsVerb() && (prev == TO || prev == MD):
			ts[i].Tag = VB

		// Do-support: after "do/does/did" plus optional adverbs, the next
		// open-class word is a base-form verb ("does n't respond").
		case (cur == NN || cur == NNS || cur == VBZ || cur == VBD) && followsDoSupport(ts, i):
			ts[i].Tag = VB

		// VBN directly after a nominal or pronoun with no auxiliary before
		// it is a simple past: "The camera impressed everyone."
		case cur == VBN && (prev.IsNoun() || prev == PRP):
			if !hasAuxBefore(ts, i) {
				ts[i].Tag = VBD
			}

		// Conversely, a simple past after a be/have auxiliary is a past
		// participle: "I am impressed", "everyone was disappointed".
		case cur == VBD && hasAuxBefore(ts, i):
			ts[i].Tag = VBN

		// A participle directly after a copular or linking verb with no
		// nominal following is predicative: "seems convoluted", "is
		// breathtaking" — an adjective for chunking purposes. A following
		// "by"/"with" marks a true agent passive ("was enchanted by the
		// view"), which must stay verbal for the PP(by;with) patterns.
		case (cur == VBN || cur == VBG) && isLinkingLike(ts, i-1) &&
			!(next.IsNoun() || next == DT || next == PRPS) &&
			lowerAt(i+1) != "by" && lowerAt(i+1) != "with":
			ts[i].Tag = JJ

		// Existential "there" only before forms of be.
		case cur == EX && !(next == VBZ || next == VBP || next == VBD || next == VB || next == MD):
			ts[i].Tag = RB

		// A noun between a determiner and another noun is usually an
		// attributive position where adjectives also sit; keep NN (bBNP
		// patterns accept NN NN), but a verb there becomes a noun:
		// "the zoom control".
		case cur.IsVerb() && prev == DT && next.IsNoun():
			ts[i].Tag = NN

		// Gerund or adjective directly between a determiner and a finite
		// verb is a nominal head: "the setting is", "the manual works",
		// "the coating deteriorated" (the VBN there repairs to VBD next
		// pass).
		case (cur == VBG || cur == JJ) && prev == DT &&
			(next == VBZ || next == VBP || next == VBD || next == VBN || next == MD):
			ts[i].Tag = NN

		// An adjective closing a determiner-rooted modifier chain with no
		// nominal following is itself the head noun: "the old terminal,"
		// — suffix guessing mistook the noun for an adjective.
		case cur == JJ && dtChainBefore(ts, i) &&
			!(next.IsNoun() || next.IsAdjective() || next == CD || next == VBG):
			ts[i].Tag = NN

		// Prepositional "like/unlike" stay IN; verbal "like" after PRP:
		// "I like the camera."
		case cur == IN && lowerAt(i) == "like" && (prev == PRP || prev == NNS || prev == NNP) && (next == DT || next == PRPS || next == NNP):
			ts[i].Tag = VBP

		// "that" as complementizer after a verb: keep IN; as determiner
		// before a noun: DT (already lexical); as relative pronoun after a
		// noun and before a verb: WDT.
		case cur == DT && lowerAt(i) == "that" && prev.IsNoun() && (next.IsVerb() || next == MD):
			ts[i].Tag = WDT
		}
	}

	// Second pass: plural noun just before a finite verb position that was
	// mis-guessed as NNS but acts as VBZ: "The colors looks" cannot occur
	// in generated text, so instead repair NN+NNS sequences where the NNS
	// is actually the sentence's verb ("The company reports strong
	// earnings"): NNS followed by JJ+NN with a nominal before it.
	for i := 1; i < n-1; i++ {
		if ts[i].Tag == NNS && at(i-1).IsNoun() && (at(i+1) == JJ || at(i+1) == DT) {
			if vb, ok := pluralAsVerb[strings.ToLower(ts[i].Text)]; ok {
				ts[i].Tag = vb
			}
		}
	}
}

// pluralAsVerb lists -s forms that are far more often 3sg verbs than
// plural nouns when they follow a subject.
var pluralAsVerb = map[string]Tag{
	"reports": VBZ, "claims": VBZ, "plans": VBZ, "notes": VBZ,
	"states": VBZ, "estimates": VBZ, "costs": VBZ, "features": VBZ,
	"supports": VBZ, "results": VBZ, "increases": VBZ, "decreases": VBZ,
}

// dtChainBefore reports whether positions before i form an unbroken
// modifier chain (JJ/VBG/CD) rooted at a determiner — i.e. token i closes
// a "the old ..." noun phrase.
func dtChainBefore(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case JJ, JJR, JJS, VBG, CD:
			continue
		case DT, PRPS:
			return true
		default:
			return false
		}
	}
	return false
}

// isLinkingLike reports whether the token at position j is a be-form or a
// linking verb ("seem", "look", "feel", "taste", "smell", ...).
func isLinkingLike(ts []TaggedToken, j int) bool {
	if j < 0 || j >= len(ts) {
		return false
	}
	lw := strings.ToLower(ts[j].Text)
	if _, ok := beForms[lw]; ok {
		return true
	}
	switch VerbLemma(lw) {
	case "seem", "look", "feel", "taste", "smell", "appear", "sound",
		"remain", "stay", "become", "get", "turn", "prove", "grow":
		return ts[j].Tag.IsVerb()
	}
	return false
}

// followsDoSupport reports whether position i follows a form of "do" (or a
// modal) with only adverbs in between.
func followsDoSupport(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case RB, RBR, RBS:
			continue
		case MD:
			return true
		case VB, VBZ, VBP, VBD:
			lw := strings.ToLower(ts[j].Text)
			return lw == "do" || lw == "does" || lw == "did"
		default:
			return false
		}
	}
	return false
}

// hasAuxBefore reports whether an auxiliary (be/have form or modal)
// appears before position i with only adverbs in between.
func hasAuxBefore(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case RB, RBR, RBS:
			continue
		case MD, VBZ, VBP, VBD, VB:
			lw := strings.ToLower(ts[j].Text)
			if _, isBe := beForms[lw]; isBe || lw == "has" || lw == "have" || lw == "had" {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
