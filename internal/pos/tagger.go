package pos

import (
	"strings"

	"webfountain/internal/tokenize"
)

// TaggedToken pairs a token with its assigned part-of-speech tag.
type TaggedToken struct {
	tokenize.Token
	Tag Tag
}

// Tagger assigns Penn Treebank tags to token streams. The zero value uses
// the embedded lexicon; Extra entries can extend it per instance.
type Tagger struct {
	// Extra maps lower-cased words to tags, consulted before the embedded
	// lexicon. It lets applications pin domain vocabulary.
	Extra map[string]Tag
}

// NewTagger returns a Tagger backed by the embedded lexicon.
func NewTagger() *Tagger { return &Tagger{} }

// Tag tags a full sentence worth of tokens. Tagging is done in two passes:
// a per-token lexical pass followed by contextual repair rules.
func (tg *Tagger) Tag(tokens []tokenize.Token) []TaggedToken {
	return tg.AppendTags(nil, tokens)
}

// AppendTags appends one TaggedToken per token to dst and returns the
// extended slice. Context repair runs over the appended region only, so a
// caller can tag several sentences into one reused buffer.
func (tg *Tagger) AppendTags(dst []TaggedToken, tokens []tokenize.Token) []TaggedToken {
	base := len(dst)
	for i, tok := range tokens {
		dst = append(dst, TaggedToken{Token: tok, Tag: tg.lexical(tok, i == 0)})
	}
	applyContextRules(dst[base:])
	return dst
}

// foldProbe probes an ASCII-keyed map with the case-folded form of s
// without allocating: the string(buf) conversion in a map index is elided
// by the compiler.
func foldProbe[V any](m map[string]V, s string) (V, bool) {
	if len(s) <= 32 {
		ascii := true
		var buf [32]byte
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 0x80 {
				ascii = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		if ascii {
			v, ok := m[string(buf[:len(s)])]
			return v, ok
		}
	}
	v, ok := m[strings.ToLower(s)]
	return v, ok
}

// foldEq reports whether s equals lower under ASCII case folding; lower
// must already be lower-case.
func foldEq(s, lower string) bool {
	if len(s) != len(lower) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// hasSuffixFold reports whether s ends with lower under ASCII case folding.
func hasSuffixFold(s, lower string) bool {
	return len(s) >= len(lower) && foldEq(s[len(s)-len(lower):], lower)
}

// TagSentence tags the tokens of a tokenize.Sentence.
func (tg *Tagger) TagSentence(s tokenize.Sentence) []TaggedToken {
	return tg.Tag(s.Tokens)
}

// lexical assigns the context-free most likely tag for a token.
func (tg *Tagger) lexical(tok tokenize.Token, first bool) Tag {
	switch tok.Kind {
	case tokenize.Number:
		return CD
	case tokenize.Punct, tokenize.Symbol:
		return PCT
	}
	w := tok.Text

	// Possessive clitic from the tokenizer ("camera" + "'s"). Verbal "'s"
	// (= is) is repaired contextually when followed by an adjective or
	// determiner; default to POS after nouns, which the context rules use.
	if foldEq(w, "'s") {
		return POS
	}
	if t, ok := foldProbe(beForms, w); ok {
		return t
	}

	if tg.Extra != nil {
		if t, ok := foldProbe(tg.Extra, w); ok {
			return t
		}
	}

	switch {
	case foldEq(w, "to"):
		return TO
	case foldEq(w, "there"):
		return EX // repaired to RB contextually when not followed by be
	case probe(determiners, w):
		return DT
	case probe(modals, w):
		return MD
	case probe(possessivePronouns, w):
		return PRPS
	case probe(pronouns, w):
		return PRP
	case probe(conjunctions, w):
		return CC
	case probe(prepositions, w):
		return IN
	}
	if t, ok := foldProbe(whWords, w); ok {
		return t
	}
	if t, ok := foldProbe(irregularVerbs, w); ok {
		return t
	}
	if t, ok := foldProbe(lexicon, w); ok {
		return t
	}

	// Unknown word: capitalized non-sentence-initial words are proper
	// nouns; sentence-initial capitalized unknowns are too, since known
	// common words were already matched via their lower-case form.
	if tok.IsCapitalized() {
		if strings.HasSuffix(w, "s") && len(w) > 3 && !hasSuffixFold(w, "ss") {
			return NNPS
		}
		return NNP
	}
	return suffixTag(w)
}

// probe is foldProbe for set-style bool maps, dropping the ok result.
func probe(m map[string]bool, s string) bool {
	v, _ := foldProbe(m, s)
	return v
}

// suffixTag guesses a tag for an unknown word from morphology. Suffix
// checks fold ASCII case so the caller need not lower-case first.
func suffixTag(w string) Tag {
	switch {
	case strings.Contains(w, "-"):
		// Unknown hyphenated compounds are overwhelmingly modifiers in
		// review text ("washed-out", "state-of-the-art").
		return JJ
	case hasSuffixFold(w, "ly") && len(w) > 4:
		return RB
	case hasSuffixFold(w, "ing") && len(w) > 5:
		return VBG
	case hasSuffixFold(w, "ed") && len(w) > 4:
		return VBN // repaired to VBD contextually after a nominal subject
	case hasSuffixFold(w, "tion") || hasSuffixFold(w, "sion") ||
		hasSuffixFold(w, "ment") || hasSuffixFold(w, "ness") ||
		hasSuffixFold(w, "ance") || hasSuffixFold(w, "ence") ||
		hasSuffixFold(w, "ship") || hasSuffixFold(w, "ity") ||
		hasSuffixFold(w, "ism") || hasSuffixFold(w, "age") ||
		hasSuffixFold(w, "ure") || hasSuffixFold(w, "cy"):
		return NN
	case hasSuffixFold(w, "ous") || hasSuffixFold(w, "ful") ||
		hasSuffixFold(w, "able") || hasSuffixFold(w, "ible") ||
		hasSuffixFold(w, "ive") || hasSuffixFold(w, "ish") ||
		hasSuffixFold(w, "less") || hasSuffixFold(w, "ic") ||
		hasSuffixFold(w, "al") || hasSuffixFold(w, "ary"):
		return JJ
	case hasSuffixFold(w, "est") && len(w) > 4:
		return JJS
	case hasSuffixFold(w, "er") && len(w) > 4:
		// -er is genuinely ambiguous (agent noun vs. comparative); nouns
		// dominate in product text (reviewer, adapter, charger).
		return NN
	case hasSuffixFold(w, "ies"):
		return NNS
	case hasSuffixFold(w, "s") && !hasSuffixFold(w, "ss") && len(w) > 3:
		return NNS
	}
	return NN
}

// applyContextRules runs Brill-style repair rules over a lexically tagged
// sentence, in order. Each rule inspects neighbouring tags and rewrites
// the current one.
func applyContextRules(ts []TaggedToken) {
	n := len(ts)
	at := func(i int) Tag {
		if i < 0 || i >= n {
			return ""
		}
		return ts[i].Tag
	}
	wordIs := func(i int, lower string) bool {
		return i >= 0 && i < n && foldEq(ts[i].Text, lower)
	}

	for i := 0; i < n; i++ {
		cur := ts[i].Tag
		prev, next := at(i-1), at(i+1)

		switch {
		// "'s" after a noun followed by JJ/DT/VBN reads as "is".
		case cur == POS && (next == JJ || next == JJR || next == JJS || next == DT || next == RB || next == VBG || next == VBN):
			ts[i].Tag = VBZ

		// DT/JJ before a base verb that can be a noun: "the lack", "a break".
		case cur == VB && (prev == DT || prev == JJ || prev == PRPS || prev == POS):
			ts[i].Tag = NN
		case cur == VBZ && (prev == DT || prev == JJ || prev == PRPS || prev == POS):
			// "the takes" is implausible but "the costs" is a plural noun.
			ts[i].Tag = NNS

		// TO or MD before any verb form forces the base form.
		case cur.IsVerb() && (prev == TO || prev == MD):
			ts[i].Tag = VB

		// Do-support: after "do/does/did" plus optional adverbs, the next
		// open-class word is a base-form verb ("does n't respond").
		case (cur == NN || cur == NNS || cur == VBZ || cur == VBD) && followsDoSupport(ts, i):
			ts[i].Tag = VB

		// VBN directly after a nominal or pronoun with no auxiliary before
		// it is a simple past: "The camera impressed everyone."
		case cur == VBN && (prev.IsNoun() || prev == PRP):
			if !hasAuxBefore(ts, i) {
				ts[i].Tag = VBD
			}

		// Conversely, a simple past after a be/have auxiliary is a past
		// participle: "I am impressed", "everyone was disappointed".
		case cur == VBD && hasAuxBefore(ts, i):
			ts[i].Tag = VBN

		// A participle directly after a copular or linking verb with no
		// nominal following is predicative: "seems convoluted", "is
		// breathtaking" — an adjective for chunking purposes. A following
		// "by"/"with" marks a true agent passive ("was enchanted by the
		// view"), which must stay verbal for the PP(by;with) patterns.
		case (cur == VBN || cur == VBG) && isLinkingLike(ts, i-1) &&
			!(next.IsNoun() || next == DT || next == PRPS) &&
			!wordIs(i+1, "by") && !wordIs(i+1, "with"):
			ts[i].Tag = JJ

		// Existential "there" only before forms of be.
		case cur == EX && !(next == VBZ || next == VBP || next == VBD || next == VB || next == MD):
			ts[i].Tag = RB

		// A noun between a determiner and another noun is usually an
		// attributive position where adjectives also sit; keep NN (bBNP
		// patterns accept NN NN), but a verb there becomes a noun:
		// "the zoom control".
		case cur.IsVerb() && prev == DT && next.IsNoun():
			ts[i].Tag = NN

		// Gerund or adjective directly between a determiner and a finite
		// verb is a nominal head: "the setting is", "the manual works",
		// "the coating deteriorated" (the VBN there repairs to VBD next
		// pass).
		case (cur == VBG || cur == JJ) && prev == DT &&
			(next == VBZ || next == VBP || next == VBD || next == VBN || next == MD):
			ts[i].Tag = NN

		// An adjective closing a determiner-rooted modifier chain with no
		// nominal following is itself the head noun: "the old terminal,"
		// — suffix guessing mistook the noun for an adjective.
		case cur == JJ && dtChainBefore(ts, i) &&
			!(next.IsNoun() || next.IsAdjective() || next == CD || next == VBG):
			ts[i].Tag = NN

		// Prepositional "like/unlike" stay IN; verbal "like" after PRP:
		// "I like the camera."
		case cur == IN && wordIs(i, "like") && (prev == PRP || prev == NNS || prev == NNP) && (next == DT || next == PRPS || next == NNP):
			ts[i].Tag = VBP

		// "that" as complementizer after a verb: keep IN; as determiner
		// before a noun: DT (already lexical); as relative pronoun after a
		// noun and before a verb: WDT.
		case cur == DT && wordIs(i, "that") && prev.IsNoun() && (next.IsVerb() || next == MD):
			ts[i].Tag = WDT
		}
	}

	// Second pass: plural noun just before a finite verb position that was
	// mis-guessed as NNS but acts as VBZ: "The colors looks" cannot occur
	// in generated text, so instead repair NN+NNS sequences where the NNS
	// is actually the sentence's verb ("The company reports strong
	// earnings"): NNS followed by JJ+NN with a nominal before it.
	for i := 1; i < n-1; i++ {
		if ts[i].Tag == NNS && at(i-1).IsNoun() && (at(i+1) == JJ || at(i+1) == DT) {
			if vb, ok := foldProbe(pluralAsVerb, ts[i].Text); ok {
				ts[i].Tag = vb
			}
		}
	}
}

// pluralAsVerb lists -s forms that are far more often 3sg verbs than
// plural nouns when they follow a subject.
var pluralAsVerb = map[string]Tag{
	"reports": VBZ, "claims": VBZ, "plans": VBZ, "notes": VBZ,
	"states": VBZ, "estimates": VBZ, "costs": VBZ, "features": VBZ,
	"supports": VBZ, "results": VBZ, "increases": VBZ, "decreases": VBZ,
}

// dtChainBefore reports whether positions before i form an unbroken
// modifier chain (JJ/VBG/CD) rooted at a determiner — i.e. token i closes
// a "the old ..." noun phrase.
func dtChainBefore(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case JJ, JJR, JJS, VBG, CD:
			continue
		case DT, PRPS:
			return true
		default:
			return false
		}
	}
	return false
}

// isLinkingLike reports whether the token at position j is a be-form or a
// linking verb ("seem", "look", "feel", "taste", "smell", ...).
func isLinkingLike(ts []TaggedToken, j int) bool {
	if j < 0 || j >= len(ts) {
		return false
	}
	if _, ok := foldProbe(beForms, ts[j].Text); ok {
		return true
	}
	// Mid-sentence verbs are already lower-case, so this ToLower is
	// normally a no-op that returns its input without allocating.
	switch VerbLemma(strings.ToLower(ts[j].Text)) {
	case "seem", "look", "feel", "taste", "smell", "appear", "sound",
		"remain", "stay", "become", "get", "turn", "prove", "grow":
		return ts[j].Tag.IsVerb()
	}
	return false
}

// followsDoSupport reports whether position i follows a form of "do" (or a
// modal) with only adverbs in between.
func followsDoSupport(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case RB, RBR, RBS:
			continue
		case MD:
			return true
		case VB, VBZ, VBP, VBD:
			w := ts[j].Text
			return foldEq(w, "do") || foldEq(w, "does") || foldEq(w, "did")
		default:
			return false
		}
	}
	return false
}

// hasAuxBefore reports whether an auxiliary (be/have form or modal)
// appears before position i with only adverbs in between.
func hasAuxBefore(ts []TaggedToken, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch ts[j].Tag {
		case RB, RBR, RBS:
			continue
		case MD, VBZ, VBP, VBD, VB:
			w := ts[j].Text
			if _, isBe := foldProbe(beForms, w); isBe ||
				foldEq(w, "has") || foldEq(w, "have") || foldEq(w, "had") {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
