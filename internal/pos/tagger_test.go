package pos

import (
	"strings"
	"testing"
	"testing/quick"

	"webfountain/internal/tokenize"
)

func tagOf(t *testing.T, sentence string) []TaggedToken {
	t.Helper()
	tk := tokenize.New()
	return NewTagger().Tag(tk.Tokenize(sentence))
}

// assertTags checks the tag sequence for a sentence, ignoring punctuation.
func assertTags(t *testing.T, sentence string, want ...Tag) {
	t.Helper()
	tagged := tagOf(t, sentence)
	var got []Tag
	for _, tt := range tagged {
		if tt.Tag != PCT {
			got = append(got, tt.Tag)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%q: got %d tags %v, want %d %v", sentence, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%q: token %d got %s, want %s (full: %v)", sentence, i, got[i], want[i], got)
		}
	}
}

func TestTagSimpleCopula(t *testing.T) {
	assertTags(t, "The colors are vibrant.", DT, NNS, VBP, JJ)
}

func TestTagTransitiveVerb(t *testing.T) {
	assertTags(t, "This camera takes excellent pictures.", DT, NN, VBZ, JJ, NNS)
}

func TestTagOfferSentence(t *testing.T) {
	assertTags(t, "The company offers mediocre services.", DT, NN, VBZ, JJ, NNS)
}

func TestTagPassiveImpress(t *testing.T) {
	assertTags(t, "I am impressed by the picture quality.", PRP, VBP, VBN, IN, DT, NN, NN)
}

func TestTagDefiniteBaseNounPhrase(t *testing.T) {
	assertTags(t, "The battery life is excellent.", DT, NN, NN, VBZ, JJ)
	assertTags(t, "The picture is flawless.", DT, NN, VBZ, JJ)
}

func TestTagNegation(t *testing.T) {
	tagged := tagOf(t, "The flash does not work well.")
	var notTag Tag
	for _, tt := range tagged {
		if tt.Text == "not" {
			notTag = tt.Tag
		}
	}
	if notTag != RB {
		t.Errorf("'not' tagged %s, want RB", notTag)
	}
}

func TestTagContractedNegation(t *testing.T) {
	tagged := tagOf(t, "The menu doesn't respond.")
	joined := ""
	for _, tt := range tagged {
		joined += string(tt.Tag) + " "
	}
	if !strings.Contains(joined, "RB") {
		t.Errorf("expected RB for n't in %s", joined)
	}
}

func TestTagProperNouns(t *testing.T) {
	tagged := tagOf(t, "Canon outsells Nikon in Japan.")
	for _, tt := range tagged {
		switch tt.Text {
		case "Canon", "Nikon", "Japan":
			if !tt.Tag.IsProperNoun() {
				t.Errorf("%s tagged %s, want proper noun", tt.Text, tt.Tag)
			}
		}
	}
}

func TestTagModalForcesBaseForm(t *testing.T) {
	tagged := tagOf(t, "You should buy this camera.")
	for _, tt := range tagged {
		if tt.Text == "buy" && tt.Tag != VB {
			t.Errorf("buy after modal tagged %s, want VB", tt.Tag)
		}
	}
}

func TestTagToInfinitive(t *testing.T) {
	tagged := tagOf(t, "I want to love this album.")
	for _, tt := range tagged {
		if tt.Text == "love" && tt.Tag != VB {
			t.Errorf("love after to tagged %s, want VB", tt.Tag)
		}
		if tt.Text == "to" && tt.Tag != TO {
			t.Errorf("to tagged %s, want TO", tt.Tag)
		}
	}
}

func TestTagPossessiveVsIs(t *testing.T) {
	// Possessive: "the camera's lens" -> POS.
	tagged := tagOf(t, "The camera's lens is sharp.")
	sawPOS := false
	for _, tt := range tagged {
		if tt.Text == "'s" && tt.Tag == POS {
			sawPOS = true
		}
	}
	if !sawPOS {
		t.Error("expected 's tagged POS in possessive context")
	}
	// Copular: "the picture's really sharp" -> VBZ.
	tagged = tagOf(t, "The picture's really sharp.")
	sawVBZ := false
	for _, tt := range tagged {
		if tt.Text == "'s" && tt.Tag == VBZ {
			sawVBZ = true
		}
	}
	if !sawVBZ {
		t.Error("expected 's tagged VBZ in copular context")
	}
}

func TestTagUnknownWordSuffixes(t *testing.T) {
	cases := map[string]Tag{
		"zorply":         RB,
		"blargification": NN,
		"frobnicating":   VBG,
		"glorptastic":    JJ,
		"zibbles":        NNS,
	}
	tg := NewTagger()
	tk := tokenize.New()
	for w, want := range cases {
		tagged := tg.Tag(tk.Tokenize("it " + w))
		got := tagged[1].Tag
		if got != want {
			t.Errorf("unknown %q tagged %s, want %s", w, got, want)
		}
	}
}

func TestTagNumbersAndPunct(t *testing.T) {
	tagged := tagOf(t, "It costs 299 dollars.")
	for _, tt := range tagged {
		if tt.Text == "299" && tt.Tag != CD {
			t.Errorf("299 tagged %s, want CD", tt.Tag)
		}
		if tt.Text == "." && tt.Tag != PCT {
			t.Errorf(". tagged %s, want PCT", tt.Tag)
		}
	}
}

func TestTagExtraLexicon(t *testing.T) {
	tg := &Tagger{Extra: map[string]Tag{"nr70": NNP}}
	tk := tokenize.New()
	tagged := tg.Tag(tk.Tokenize("the nr70 is great"))
	if tagged[1].Tag != NNP {
		t.Errorf("Extra lexicon ignored: nr70 tagged %s", tagged[1].Tag)
	}
}

func TestTagVerbAfterDeterminerBecomesNoun(t *testing.T) {
	tagged := tagOf(t, "The lack of memory sticks is annoying.")
	if tagged[1].Text != "lack" || tagged[1].Tag != NN {
		t.Errorf("'the lack' tagged %s, want NN", tagged[1].Tag)
	}
}

func TestTagPastAfterSubject(t *testing.T) {
	tagged := tagOf(t, "The flash disappointed everyone.")
	for _, tt := range tagged {
		if tt.Text == "disappointed" && tt.Tag != VBD {
			t.Errorf("disappointed tagged %s, want VBD after subject", tt.Tag)
		}
	}
	// But keep VBN in passive: "was disappointed".
	tagged = tagOf(t, "Everyone was disappointed by the flash.")
	for _, tt := range tagged {
		if tt.Text == "disappointed" && tt.Tag != VBN {
			t.Errorf("disappointed tagged %s, want VBN in passive", tt.Tag)
		}
	}
}

func TestTagIsNounIsVerbHelpers(t *testing.T) {
	if !NN.IsNoun() || !NNPS.IsNoun() || JJ.IsNoun() {
		t.Error("IsNoun misclassifies")
	}
	if !NNP.IsProperNoun() || NN.IsProperNoun() {
		t.Error("IsProperNoun misclassifies")
	}
	if !JJR.IsAdjective() || NN.IsAdjective() {
		t.Error("IsAdjective misclassifies")
	}
	if !VBZ.IsVerb() || MD.IsVerb() || NN.IsVerb() {
		t.Error("IsVerb misclassifies")
	}
	if !RBS.IsAdverb() || JJ.IsAdverb() {
		t.Error("IsAdverb misclassifies")
	}
}

// Benchmark-quality accuracy check on a fixed mini-treebank of sentences in
// the style of the corpora. Requires >= 95% token accuracy.
func TestTagAccuracyOnMiniTreebank(t *testing.T) {
	type example struct {
		text string
		tags []Tag
	}
	examples := []example{
		{"The zoom is responsive and the menu is intuitive.",
			[]Tag{DT, NN, VBZ, JJ, CC, DT, NN, VBZ, JJ, PCT}},
		{"This album offers catchy songs.",
			[]Tag{DT, NN, VBZ, JJ, NNS, PCT}},
		{"The battery drains quickly.",
			[]Tag{DT, NN, VBZ, RB, PCT}},
		{"I was impressed with the flash capabilities.",
			[]Tag{PRP, VBD, VBN, IN, DT, NN, NNS, PCT}},
		{"The company announced strong quarterly earnings.",
			[]Tag{DT, NN, VBD, JJ, JJ, NNS, PCT}},
		{"Analysts praised the new treatment.",
			[]Tag{NNS, VBD, DT, JJ, NN, PCT}},
		{"The picture quality exceeded my expectations.",
			[]Tag{DT, NN, NN, VBD, PRPS, NNS, PCT}},
		{"The first movement is a haunting piece.",
			[]Tag{DT, JJ, NN, VBZ, DT, JJ, NN, PCT}},
	}
	tg := NewTagger()
	tk := tokenize.New()
	total, correct := 0, 0
	for _, ex := range examples {
		tagged := tg.Tag(tk.Tokenize(ex.text))
		if len(tagged) != len(ex.tags) {
			t.Fatalf("%q: got %d tokens, want %d", ex.text, len(tagged), len(ex.tags))
		}
		for i, tt := range tagged {
			total++
			if tt.Tag == ex.tags[i] {
				correct++
			} else {
				t.Logf("%q: %q tagged %s, want %s", ex.text, tt.Text, tt.Tag, ex.tags[i])
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("mini-treebank accuracy %.2f < 0.95", acc)
	}
}

// Property: the tagger emits exactly one tag per token and never an empty
// tag, for arbitrary input.
func TestQuickOneTagPerToken(t *testing.T) {
	tg := NewTagger()
	tk := tokenize.New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		tagged := tg.Tag(toks)
		if len(tagged) != len(toks) {
			return false
		}
		for _, tt := range tagged {
			if tt.Tag == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: tagging is deterministic.
func TestQuickTaggingDeterministic(t *testing.T) {
	tg := NewTagger()
	tk := tokenize.New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		a := tg.Tag(toks)
		b := tg.Tag(toks)
		for i := range a {
			if a[i].Tag != b[i].Tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTagAccuracyOnExtendedTreebank widens the accuracy check to a more
// varied sentence set: passives, chains, questions, comparatives,
// possessives, numbers and multi-clause coordination.
func TestTagAccuracyOnExtendedTreebank(t *testing.T) {
	type example struct {
		text string
		tags []Tag
	}
	examples := []example{
		{"The NR70 does not require an add-on adapter.",
			[]Tag{DT, NNP, VBZ, RB, VB, DT, JJ, NN, PCT}},
		{"Unlike the T70, the NR70 shines.",
			[]Tag{IN, DT, NNP, PCT, DT, NNP, VBZ, PCT}},
		{"The product fails to meet our quality expectations.",
			[]Tag{DT, NN, VBZ, TO, VB, PRPS, NN, NNS, PCT}},
		{"The camera's lens is remarkably sharp.",
			[]Tag{DT, NN, POS, NN, VBZ, RB, JJ, PCT}},
		{"I would buy it again tomorrow.",
			[]Tag{PRP, MD, VB, PRP, RB, RB, PCT}},
		{"The menu doesn't respond quickly.",
			[]Tag{DT, NN, VBZ, RB, VB, RB, PCT}},
		{"Regulators criticized the company for shoddy maintenance.",
			[]Tag{NNS, VBD, DT, NN, IN, JJ, NN, PCT}},
		{"The pipeline leaked crude into the bay.",
			[]Tag{DT, NN, VBD, NN, IN, DT, NN, PCT}},
		{"The zoom is better than the menu.",
			[]Tag{DT, NN, VBZ, JJR, IN, DT, NN, PCT}},
		{"It costs 299 dollars and weighs nine ounces.",
			[]Tag{PRP, VBZ, CD, NNS, CC, VBZ, NN, NNS, PCT}},
		{"The battery never lasts a full day.",
			[]Tag{DT, NN, RB, VBZ, DT, JJ, NN, PCT}},
		{"Critics were appalled by the waiting room.",
			[]Tag{NNS, VBD, VBN, IN, DT, VBG, NN, PCT}},
	}
	tg := NewTagger()
	tk := tokenize.New()
	total, correct := 0, 0
	for _, ex := range examples {
		tagged := tg.Tag(tk.Tokenize(ex.text))
		if len(tagged) != len(ex.tags) {
			t.Fatalf("%q: got %d tokens, want %d (%v)", ex.text, len(tagged), len(ex.tags), tagged)
		}
		for i, tt := range tagged {
			total++
			if tt.Tag == ex.tags[i] {
				correct++
			} else {
				t.Logf("%q: %q tagged %s, want %s", ex.text, tt.Text, tt.Tag, ex.tags[i])
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.92 {
		t.Errorf("extended treebank accuracy %.3f < 0.92", acc)
	}
}
