package pos

import "testing"

func TestVerbLemma(t *testing.T) {
	cases := map[string]string{
		"takes":        "take",
		"took":         "take",
		"taken":        "take",
		"is":           "be",
		"are":          "be",
		"was":          "be",
		"'s":           "be",
		"impressed":    "impress",
		"impresses":    "impress",
		"loves":        "love",
		"loved":        "love",
		"loving":       "love",
		"offered":      "offer",
		"offers":       "offer",
		"stopped":      "stop",
		"running":      "run",
		"tries":        "try",
		"tried":        "try",
		"fails":        "fail",
		"failed":       "fail",
		"lacks":        "lack",
		"lacked":       "lack",
		"requires":     "require",
		"required":     "require",
		"disappoints":  "disappoint",
		"disappointed": "disappoint",
		"recommends":   "recommend",
		"recommended":  "recommend",
		"provides":     "provide",
		"provided":     "provide",
		"watches":      "watch",
		"fixes":        "fix",
		"goes":         "go",
		"delivers":     "deliver",
		"delivered":    "deliver",
		"praised":      "praise",
		"criticized":   "criticize",
		"annoys":       "annoy",
		"annoyed":      "annoy",
		"enjoys":       "enjoy",
		"enjoyed":      "enjoy",
		"hates":        "hate",
		"hated":        "hate",
		"avoids":       "avoid",
		"avoided":      "avoid",
		"seems":        "seem",
		"seemed":       "seem",
		"looks":        "look",
		"looked":       "look",
		"sounds":       "sound",
		"sounded":      "sound",
		"IMPRESSED":    "impress",
		"camera":       "camera", // non-verb unchanged
	}
	for in, want := range cases {
		if got := VerbLemma(in); got != want {
			t.Errorf("VerbLemma(%q) = %q, want %q", in, got, want)
		}
	}
}
