package pos

import "strings"

// irregularLemmas maps irregular verb inflections to their base form.
var irregularLemmas = map[string]string{
	"is": "be", "are": "be", "am": "be", "was": "be", "were": "be",
	"been": "be", "being": "be", "'s": "be", "'re": "be", "'m": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"took": "take", "taken": "take", "takes": "take", "taking": "take",
	"made": "make", "makes": "make", "making": "make",
	"gave": "give", "given": "give", "gives": "give", "giving": "give",
	"got": "get", "gotten": "get", "gets": "get", "getting": "get",
	"went": "go", "gone": "go", "goes": "go", "going": "go",
	"came": "come", "comes": "come", "coming": "come",
	"said": "say", "says": "say", "saying": "say",
	"found": "find", "finds": "find", "finding": "find",
	"felt": "feel", "feels": "feel", "feeling": "feel",
	"kept": "keep", "keeps": "keep", "keeping": "keep",
	"left": "leave", "leaves": "leave", "leaving": "leave",
	"held": "hold", "holds": "hold", "holding": "hold",
	"broke": "break", "broken": "break", "breaks": "break", "breaking": "break",
	"bought": "buy", "buys": "buy", "buying": "buy",
	"sold": "sell", "sells": "sell", "selling": "sell",
	"built": "build", "builds": "build", "building": "build",
	"fell": "fall", "fallen": "fall", "falls": "fall", "falling": "fall",
	"grew": "grow", "grown": "grow", "grows": "grow", "growing": "grow",
	"knew": "know", "known": "know", "knows": "know", "knowing": "know",
	"ran": "run", "runs": "run", "running": "run",
	"saw": "see", "seen": "see", "sees": "see", "seeing": "see",
	"sent": "send", "sends": "send", "sending": "send",
	"shot": "shoot", "shoots": "shoot", "shooting": "shoot",
	"spent": "spend", "spends": "spend", "spending": "spend",
	"stood": "stand", "stands": "stand", "standing": "stand",
	"thought": "think", "thinks": "think", "thinking": "think",
	"told": "tell", "tells": "tell", "telling": "tell",
	"wore": "wear", "worn": "wear", "wears": "wear", "wearing": "wear",
	"won": "win", "wins": "win", "winning": "win",
	"wrote": "write", "written": "write", "writes": "write", "writing": "write",
	"lost": "lose", "loses": "lose", "losing": "lose",
	"met": "meet", "meets": "meet", "meeting": "meet",
	"paid": "pay", "pays": "pay", "paying": "pay",
	"froze": "freeze", "frozen": "freeze", "freezes": "freeze",
	"sang": "sing", "sung": "sing", "sings": "sing", "singing": "sing",
	"rose": "rise", "risen": "rise", "rises": "rise", "rising": "rise",
	"beaten": "beat", "beats": "beat", "beating": "beat",
	"dies": "die", "died": "die", "dying": "die",
	"lies": "lie", "lied": "lie", "lying": "lie",
	"ties": "tie", "tied": "tie", "tying": "tie",
}

// doubledConsonantStems recognizes -ed/-ing forms with a doubled final
// consonant whose base keeps a single one ("stopped" -> "stop").
func undouble(stem string) string {
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && isConsonant(stem[n-1]) && stem[n-1] != 'l' && stem[n-1] != 's' {
		return stem[:n-1]
	}
	return stem
}

func isConsonant(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return c >= 'a' && c <= 'z'
}

// VerbLemma returns the base form of a verb inflection: "takes" -> "take",
// "impressed" -> "impress", "running" -> "run". Unknown regular forms are
// stemmed with suffix-stripping rules; words that are not inflections are
// returned unchanged (lower-cased).
func VerbLemma(w string) string {
	lw := strings.ToLower(w)
	if base, ok := irregularLemmas[lw]; ok {
		return base
	}
	switch {
	case strings.HasSuffix(lw, "ies") && len(lw) > 4:
		return lw[:len(lw)-3] + "y"
	case strings.HasSuffix(lw, "sses"), strings.HasSuffix(lw, "shes"),
		strings.HasSuffix(lw, "ches"), strings.HasSuffix(lw, "xes"),
		strings.HasSuffix(lw, "zes"):
		return lw[:len(lw)-2]
	case strings.HasSuffix(lw, "oes") && len(lw) > 3:
		return lw[:len(lw)-2]
	case strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss") && len(lw) > 3:
		return lw[:len(lw)-1]
	case strings.HasSuffix(lw, "ied") && len(lw) > 4:
		return lw[:len(lw)-3] + "y"
	case strings.HasSuffix(lw, "ing") && len(lw) > 5:
		stem := undouble(lw[:len(lw)-3])
		return restoreE(stem)
	case strings.HasSuffix(lw, "ed") && len(lw) > 4:
		stem := undouble(lw[:len(lw)-2])
		return restoreE(stem)
	}
	return lw
}

// restoreE adds back a dropped final "e" for stems like "impress" (no) vs.
// "lov" -> "love". Heuristic: consonant + single vowel + consonant stems of
// length <= 5 and stems ending in typical e-dropping clusters get the e.
func restoreE(stem string) string {
	n := len(stem)
	if n == 0 {
		return stem
	}
	// Stems ending in these clusters nearly always had a trailing e.
	for _, suf := range []string{"at", "iz", "is", "us", "as", "os", "ang", "ast",
		"vid", "cid", "sid",
		"uc", "ac", "ic", "nc", "rc", "g", "v", "u", "ir", "ur", "or",
		"ibl", "abl", "pl", "cl", "bl", "dl", "tl", "gl", "fl", "kl", "sl", "zl",
		"quir", "par", "car", "tur"} {
		if strings.HasSuffix(stem, suf) {
			// "g" exception: "-ng" stays ("hang"), "-gg" handled by undouble.
			if suf == "g" && strings.HasSuffix(stem, "ng") {
				return stem
			}
			return stem + "e"
		}
	}
	return stem
}
