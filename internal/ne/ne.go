// Package ne implements the named entity spotter used in the second
// operational mode (no predefined subjects): it detects capitalized noun
// phrases as candidate subjects.
//
// Following the paper, candidate names are collected as sequences of
// capitalized tokens plus special lower-case connector tokens ("and",
// "of"); each candidate is then examined for conjunctions, prepositions
// and possessives, which indicate that the candidate must be split into
// multiple entities. The paper's example: "Prof. Wilson of American
// University" splits into "Prof. Wilson" and "American University".
package ne

import (
	"strings"

	"webfountain/internal/tokenize"
)

// Entity is one detected named entity.
type Entity struct {
	// Text is the entity's surface form (tokens joined by spaces).
	Text string
	// Start and End are token indices within the scanned token slice
	// (half-open).
	Start, End int
	// Sentence is the sentence index for sentence scans, -1 otherwise.
	Sentence int
}

// connectors are lower-case tokens allowed inside a candidate name.
var connectors = map[string]bool{
	"and": true, "of": true, "the": true, "for": true, "&": true,
}

// splitters are connector tokens at which a candidate is divided when the
// split heuristics fire. Possessive clitics also split.
var splitters = map[string]bool{
	"and": true, "of": true, "for": true,
}

// titles are honorifics that bind to the following capitalized token and
// suppress a split between them.
var titles = map[string]bool{
	"mr.": true, "mrs.": true, "ms.": true, "dr.": true, "prof.": true,
	"gen.": true, "gov.": true, "sen.": true, "rep.": true, "capt.": true,
	"col.": true, "lt.": true, "maj.": true, "sgt.": true, "rev.": true,
	"president": true, "chairman": true, "professor": true,
}

// stopwords are capitalized sentence-initial function words that must not
// seed an entity by themselves.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "this": true, "that": true,
	"these": true, "those": true, "it": true, "its": true, "he": true,
	"she": true, "they": true, "we": true, "i": true, "you": true,
	"my": true, "your": true, "his": true, "her": true, "our": true,
	"their": true, "there": true, "here": true, "when": true,
	"where": true, "what": true, "who": true, "why": true, "how": true,
	"unlike": true, "like": true, "as": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "with": true, "from": true,
	"but": true, "and": true, "or": true, "if": true, "while": true,
	"after": true, "before": true, "during": true, "however": true,
	"although": true, "because": true, "since": true, "also": true,
	"meanwhile": true, "moreover": true, "unfortunately": true,
	"fortunately": true, "overall": true, "finally": true, "still": true,
	"yet": true, "so": true, "then": true, "once": true, "some": true,
	"most": true, "many": true, "all": true, "no": true, "not": true,
	"even": true, "despite": true, "according": true, "last": true,
	"earlier": true, "later": true, "today": true, "yesterday": true,
	"tomorrow": true, "recently": true, "critics": true, "analysts": true,
	"investors": true, "reviewers": true, "officials": true,
	"regulators": true, "doctors": true, "patients": true,
	"researchers": true, "scientists": true, "executives": true,
	"shares": true, "sales": true, "results": true, "revenue": true,
	"profits": true, "earnings": true, "production": true,
	"both": true, "either": true, "neither": true, "each": true,
	"every": true, "any": true, "such": true, "several": true,
	"few": true, "other": true, "another": true, "one": true,
	"two": true, "three": true, "four": true, "five": true,
}

// Spotter detects named entities in token streams. The zero value is ready
// to use.
type Spotter struct{}

// New returns a ready-to-use named entity spotter.
func New() *Spotter { return &Spotter{} }

// SpotTokens scans tokens and returns named entities ordered by position.
func (sp *Spotter) SpotTokens(tokens []tokenize.Token) []Entity {
	return sp.AppendEntities(nil, tokens, -1)
}

// SpotSentences scans each sentence, marking entities with their sentence
// index. Sentence-initial capitalized words only seed an entity when they
// are not common function words or when followed by more capitalized
// tokens.
func (sp *Spotter) SpotSentences(sents []tokenize.Sentence) []Entity {
	var all []Entity
	for _, s := range sents {
		all = sp.AppendEntities(all, s.Tokens, s.Index)
	}
	return all
}

// AppendEntities scans tokens and appends the detected entities to dst,
// marking them with the given sentence index (-1 for whole-document
// scans). All lookups fold case without allocating.
func (sp *Spotter) AppendEntities(dst []Entity, tokens []tokenize.Token, sentence int) []Entity {
	i := 0
	for i < len(tokens) {
		if !isCandidateStart(tokens, i) {
			i++
			continue
		}
		// Collect the maximal candidate run: capitalized tokens, numbers
		// attached to names (NR70 handled as capitalized), connectors and
		// possessive clitics.
		j := i + 1
		for j < len(tokens) {
			t := tokens[j]
			if isCapWord(t) {
				j++
				continue
			}
			if isConnector(t) && j+1 < len(tokens) && isCapWord(tokens[j+1]) {
				j += 2
				continue
			}
			if isPossessive(t) && j+1 < len(tokens) && isCapWord(tokens[j+1]) {
				j += 2
				continue
			}
			break
		}
		dst = splitCandidate(dst, tokens, i, j, sentence)
		i = j
	}
	return dst
}

// isCandidateStart reports whether a candidate name may begin at i.
func isCandidateStart(tokens []tokenize.Token, i int) bool {
	t := tokens[i]
	if !isCapWord(t) {
		return false
	}
	if !isStopword(t) {
		return true
	}
	// A capitalized stopword can still start an entity when directly
	// followed by another capitalized word ("The Beatles") — but only
	// mid-sentence starts are trustworthy; we accept the lookahead form.
	return i+1 < len(tokens) && isCapWord(tokens[i+1]) && !isStopword(tokens[i+1])
}

func isConnector(t tokenize.Token) bool {
	v, _ := tokenize.FoldProbe(connectors, t.Text)
	return v
}

func isStopword(t tokenize.Token) bool {
	v, _ := tokenize.FoldProbe(stopwords, t.Text)
	return v
}

func isSplitter(t tokenize.Token) bool {
	v, _ := tokenize.FoldProbe(splitters, t.Text)
	return v
}

func isPossessive(t tokenize.Token) bool { return tokenize.EqualFold(t.Text, "'s") }

func isCapWord(t tokenize.Token) bool {
	if t.Kind != tokenize.Word {
		return false
	}
	return t.IsCapitalized()
}

// splitCandidate applies the paper's split heuristics to a candidate run
// [i, j), appending the resulting entities to dst: split at
// conjunctions/prepositions unless a title binds the parts, and split at
// possessives.
func splitCandidate(dst []Entity, tokens []tokenize.Token, i, j, sentence int) []Entity {
	start := i
	flush := func(end int) {
		if end <= start {
			return
		}
		// Trim leading/trailing connectors and stopword-only entities.
		s, e := start, end
		for s < e && (isConnector(tokens[s]) || isStopword(tokens[s]) && s == start && e-s > 1 && !isTitle(tokens[s])) {
			if isConnector(tokens[s]) {
				s++
				continue
			}
			if isStopword(tokens[s]) && !isTitle(tokens[s]) {
				s++
				continue
			}
			break
		}
		for e > s && (isConnector(tokens[e-1]) || isPossessive(tokens[e-1])) {
			e--
		}
		if e <= s {
			return
		}
		if e-s == 1 && isStopword(tokens[s]) {
			return
		}
		text := tokens[s].Text // single-token entity: no string build
		if e-s > 1 {
			n := 0
			for _, t := range tokens[s:e] {
				n += len(t.Text) + 1
			}
			var b strings.Builder
			b.Grow(n - 1)
			for k, t := range tokens[s:e] {
				if k > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t.Text)
			}
			text = b.String()
		}
		dst = append(dst, Entity{
			Text:     text,
			Start:    s,
			End:      e,
			Sentence: sentence,
		})
	}
	for k := i; k < j; k++ {
		if isSplitter(tokens[k]) {
			// "of" after a title phrase splits ("Prof. Wilson of American
			// University"); a leading "of" inside an org name like "Bank
			// of America" does not when the left side is a single
			// non-title capitalized word.
			if tokenize.EqualFold(tokens[k].Text, "of") && k-start == 1 && !isTitle(tokens[start]) {
				continue // keep "Bank of America" together
			}
			flush(k)
			start = k + 1
			continue
		}
		if isPossessive(tokens[k]) {
			flush(k)
			start = k + 1
		}
	}
	flush(j)
	return dst
}

func isTitle(t tokenize.Token) bool {
	v, _ := tokenize.FoldProbe(titles, t.Text)
	return v
}
