package ne

import (
	"strings"
	"testing"

	"webfountain/internal/tokenize"
)

var tk = tokenize.New()

func entityTexts(es []Entity) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Text
	}
	return out
}

func spot(s string) []string {
	return entityTexts(New().SpotSentences(tk.Sentences(s)))
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestPaperSplitExample(t *testing.T) {
	got := spot("We heard Prof. Wilson of American University speak.")
	if !contains(got, "Prof. Wilson") {
		t.Errorf("missing Prof. Wilson in %v", got)
	}
	if !contains(got, "American University") {
		t.Errorf("missing American University in %v", got)
	}
	if contains(got, "Prof. Wilson of American University") {
		t.Errorf("unsplit candidate leaked: %v", got)
	}
}

func TestSimpleProperNoun(t *testing.T) {
	got := spot("Reviewers compared Canon against Nikon.")
	if !contains(got, "Canon") || !contains(got, "Nikon") {
		t.Errorf("got %v", got)
	}
}

func TestMultiTokenEntity(t *testing.T) {
	got := spot("The Sony CLIE impressed the critics.")
	if !contains(got, "Sony CLIE") {
		t.Errorf("got %v", got)
	}
}

func TestConjunctionSplits(t *testing.T) {
	got := spot("Both Kodak and Fuji announced new models.")
	if !contains(got, "Kodak") || !contains(got, "Fuji") {
		t.Errorf("got %v", got)
	}
	if contains(got, "Kodak and Fuji") {
		t.Errorf("conjunction not split: %v", got)
	}
}

func TestPossessiveSplits(t *testing.T) {
	got := spot("We tried Sony's Memory Stick expansion.")
	if !contains(got, "Sony") {
		t.Errorf("got %v", got)
	}
	if !contains(got, "Memory Stick") {
		t.Errorf("got %v", got)
	}
}

func TestBankOfAmericaStaysTogether(t *testing.T) {
	got := spot("Shares of Bank of America rose.")
	if !contains(got, "Bank of America") {
		t.Errorf("got %v", got)
	}
}

func TestSentenceInitialStopwordNotEntity(t *testing.T) {
	got := spot("The camera works. However, the menu lags. Unfortunately, nothing improved.")
	for _, e := range got {
		switch e {
		case "The", "However", "Unfortunately":
			t.Errorf("stopword leaked as entity: %v", got)
		}
	}
}

func TestSentenceInitialRealEntityKept(t *testing.T) {
	got := spot("Canon shipped the camera in June.")
	if !contains(got, "Canon") {
		t.Errorf("got %v", got)
	}
}

func TestSentenceIndexRecorded(t *testing.T) {
	es := New().SpotSentences(tk.Sentences("Canon won. Nikon lost."))
	if len(es) < 2 {
		t.Fatalf("got %+v", es)
	}
	byText := map[string]int{}
	for _, e := range es {
		byText[e.Text] = e.Sentence
	}
	if byText["Canon"] != 0 || byText["Nikon"] != 1 {
		t.Errorf("sentence indices: %v", byText)
	}
}

func TestSpotTokensSpans(t *testing.T) {
	toks := tk.Tokenize("I prefer the Olympus Stylus over others")
	es := New().SpotTokens(toks)
	if len(es) != 1 || es[0].Text != "Olympus Stylus" {
		t.Fatalf("got %+v", es)
	}
	if toks[es[0].Start].Text != "Olympus" || es[0].End-es[0].Start != 2 {
		t.Errorf("span = [%d,%d)", es[0].Start, es[0].End)
	}
	if es[0].Sentence != -1 {
		t.Errorf("raw scan sentence = %d, want -1", es[0].Sentence)
	}
}

func TestAlphanumericModelNames(t *testing.T) {
	got := spot("I compared the NR70 with the T650C today.")
	if !contains(got, "NR70") || !contains(got, "T650C") {
		t.Errorf("got %v", got)
	}
}

func TestNoEntitiesInLowercaseText(t *testing.T) {
	if got := spot("the quick brown fox jumps over the lazy dog."); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

// Property-style check: lower-casing the input removes every entity, and
// detection is deterministic.
func TestCaseSensitivityInvariant(t *testing.T) {
	inputs := []string{
		"Canon and Nikon both shipped cameras to Japan.",
		"Prof. Wilson of American University spoke at Sony.",
		"The NR70 outsold the T650C in March.",
	}
	sp := New()
	for _, in := range inputs {
		upper := sp.SpotSentences(tk.Sentences(in))
		if len(upper) == 0 {
			t.Errorf("%q: no entities", in)
		}
		lower := sp.SpotSentences(tk.Sentences(strings.ToLower(in)))
		if len(lower) != 0 {
			t.Errorf("%q lower-cased still yields %v", in, lower)
		}
		again := sp.SpotSentences(tk.Sentences(in))
		if len(again) != len(upper) {
			t.Errorf("%q: nondeterministic", in)
		}
	}
}
