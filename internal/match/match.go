// Package match implements the shared token-sequence matcher that backs
// the term spotter and the sentiment lexicon's phrase lookup: an
// Aho-Corasick automaton over interned word symbols, compiled once at
// platform start and scanned per document with zero allocation.
//
// The previous hot path looked every token up in a Go map after a
// strings.ToLower call — one allocation per capitalized token and a hash
// per token per resource. The matcher replaces both: tokens resolve to
// dense symbol IDs through a case-folding open-addressing table that
// never allocates, and the automaton's transitions live in one packed
// hash table keyed by (state, symbol), so a document is scanned in a
// single pass regardless of how many patterns are registered.
//
// Two scan disciplines are exposed over the same compiled trie:
//
//   - Scan: classic Aho-Corasick with failure links, reporting every
//     occurrence of every pattern (the spotter's contract).
//   - LongestAt: a plain root walk reporting the longest pattern starting
//     at one position (the lexicon's longest-entry-first contract).
//
// Patterns are word sequences, already lower-cased by the builder;
// matching is case-insensitive (ASCII fast path, Unicode fallback).
package match

import "strings"

// noSym marks a token word that appears in no pattern. Symbol 0 is
// reserved for it so the scanner can branch on zero.
const noSym = 0

// Builder accumulates patterns before compilation.
type Builder struct {
	syms  map[string]uint32
	words []string
	pats  [][]uint32
}

// NewBuilder returns an empty pattern builder.
func NewBuilder() *Builder {
	return &Builder{syms: map[string]uint32{}}
}

// Add registers one pattern (a word sequence). Words are lower-cased by
// the builder. The pattern's payload is the value reported on a match —
// typically an index into a caller-side table. Empty patterns are
// ignored. Add returns the builder for chaining.
func (b *Builder) Add(words []string) *Builder {
	if len(words) == 0 {
		return b
	}
	pat := make([]uint32, len(words))
	for i, w := range words {
		lw := strings.ToLower(w)
		sym, ok := b.syms[lw]
		if !ok {
			sym = uint32(len(b.words)) + 1 // 0 is noSym
			b.syms[lw] = sym
			b.words = append(b.words, lw)
		}
		pat[i] = sym
	}
	b.pats = append(b.pats, pat)
	return b
}

// Len returns the number of registered patterns. The payload of the
// pattern added by the n-th Add call is n (zero-based), so callers can
// index a side table by it.
func (b *Builder) Len() int { return len(b.pats) }

// trieNode is scratch state used only during compilation.
type trieNode struct {
	next map[uint32]int32
	out  []int32 // pattern indices terminating here
	fail int32
	len  int32 // depth in words (pattern length for terminals)
}

// Match is one reported occurrence.
type Match struct {
	// Pattern is the zero-based index of the Add call that registered
	// the matched pattern.
	Pattern int
	// Start and End are token indices of the occurrence (half-open).
	Start, End int
}

// Matcher is the compiled automaton. It is immutable and safe for
// concurrent use; build one at startup and share it across workers.
type Matcher struct {
	table    foldTable
	trans    transTable
	fail     []int32
	outHead  []int32 // per state: head index into outList, -1 if none
	outList  []outEntry
	patLen   []int32 // per pattern: length in words
	maxDepth int
}

// outEntry is one node of the per-state output list (a linked list so
// suffix outputs are shared rather than copied per state).
type outEntry struct {
	pattern int32
	length  int32
	next    int32
}

// Compile freezes the builder into a Matcher.
func (b *Builder) Compile() *Matcher {
	// Build the word trie.
	nodes := []trieNode{{next: map[uint32]int32{}}}
	patLen := make([]int32, len(b.pats))
	for pi, pat := range b.pats {
		cur := int32(0)
		for _, sym := range pat {
			nxt, ok := nodes[cur].next[sym]
			if !ok {
				nxt = int32(len(nodes))
				nodes = append(nodes, trieNode{next: map[uint32]int32{}, len: nodes[cur].len + 1})
				nodes[cur].next[sym] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = append(nodes[cur].out, int32(pi))
		patLen[pi] = int32(len(pat))
	}

	m := &Matcher{
		fail:    make([]int32, len(nodes)),
		outHead: make([]int32, len(nodes)),
		patLen:  patLen,
	}
	for i := range m.outHead {
		m.outHead[i] = -1
	}
	m.table.init(b.words)

	// BFS failure links (standard Aho-Corasick construction), and the
	// per-state output lists: a state's outputs are its own terminals
	// followed by a link to its failure state's list.
	queue := make([]int32, 0, len(nodes))
	for _, child := range nodes[0].next {
		nodes[child].fail = 0
		queue = append(queue, child)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for sym, child := range nodes[cur].next {
			f := nodes[cur].fail
			for f != 0 {
				if nxt, ok := nodes[f].next[sym]; ok {
					f = nxt
					goto linked
				}
				f = nodes[f].fail
			}
			if nxt, ok := nodes[0].next[sym]; ok {
				f = nxt
			}
		linked:
			nodes[child].fail = f
			queue = append(queue, child)
		}
	}
	// queue is in BFS order; parents precede children, so a failure
	// state's output list is final before its dependents link to it.
	link := func(state int32) {
		n := &nodes[state]
		head := int32(-1)
		if n.fail != state {
			head = m.outHead[n.fail]
		}
		for i := len(n.out) - 1; i >= 0; i-- {
			pi := n.out[i]
			m.outList = append(m.outList, outEntry{pattern: pi, length: patLen[pi], next: head})
			head = int32(len(m.outList) - 1)
		}
		m.outHead[state] = head
		m.fail[state] = n.fail
	}
	link(0)
	for _, state := range queue {
		link(state)
	}

	// Pack transitions into the shared open-addressing table.
	edges := 0
	for i := range nodes {
		edges += len(nodes[i].next)
	}
	m.trans.init(edges)
	for state := range nodes {
		for sym, child := range nodes[state].next {
			m.trans.put(int32(state), sym, child)
		}
		if int(nodes[state].len) > m.maxDepth {
			m.maxDepth = int(nodes[state].len)
		}
	}
	return m
}

// MaxLen returns the longest registered pattern length in words.
func (m *Matcher) MaxLen() int { return m.maxDepth }

// Sym resolves a token's surface text to its symbol, case-insensitively
// and without allocating. It returns 0 for words outside every pattern.
func (m *Matcher) Sym(word string) uint32 { return m.table.lookup(word) }

// Scan runs the automaton over syms[i] = Sym(token i text) resolved by
// the caller via fn, reporting every pattern occurrence to emit in token
// order (at equal end positions, longer patterns first). It allocates
// nothing itself; emit receives matches as they are found.
//
// fn is called once per token and must return Sym(token text); callers
// scan token slices of any element type by closing over them.
func (m *Matcher) Scan(n int, fn func(i int) uint32, emit func(Match)) {
	state := int32(0)
	for i := 0; i < n; i++ {
		sym := fn(i)
		if sym == noSym {
			// A word outside every pattern always resets to the root:
			// no pattern can span it.
			state = 0
			continue
		}
		for {
			if nxt, ok := m.trans.get(state, sym); ok {
				state = nxt
				break
			}
			if state == 0 {
				break
			}
			state = m.fail[state]
		}
		for e := m.outHead[state]; e >= 0; e = m.outList[e].next {
			o := &m.outList[e]
			emit(Match{
				Pattern: int(o.pattern),
				Start:   i + 1 - int(o.length),
				End:     i + 1,
			})
		}
	}
}

// WalkAt walks the trie from the root over positions i, i+1, ... and
// calls visit for every pattern that starts exactly at i, in increasing
// length order. The walk stops when visit returns false, when the trie
// runs out of transitions, or when a word outside every pattern is hit.
// Like Scan, symbols are supplied per position by fn. Callers wanting
// the lexicon's longest-entry-first discipline collect the visited
// (pattern, length) pairs and try them in reverse.
func (m *Matcher) WalkAt(n, i int, fn func(i int) uint32, visit func(pattern, length int) bool) {
	state := int32(0)
	for j := i; j < n && j-i < m.maxDepth; j++ {
		sym := fn(j)
		if sym == noSym {
			return
		}
		nxt, found := m.trans.get(state, sym)
		if !found {
			return
		}
		state = nxt
		// Only outputs terminating exactly here (depth j-i+1) count: a
		// failure-suffix output would start later than i.
		for e := m.outHead[state]; e >= 0; e = m.outList[e].next {
			o := &m.outList[e]
			if int(o.length) == j-i+1 {
				if !visit(int(o.pattern), int(o.length)) {
					return
				}
				break
			}
		}
	}
}

// LongestAt returns the longest pattern starting exactly at position i,
// or ok=false when none does.
func (m *Matcher) LongestAt(n, i int, fn func(i int) uint32) (pattern, length int, ok bool) {
	m.WalkAt(n, i, fn, func(p, l int) bool {
		pattern, length, ok = p, l, true
		return true
	})
	return pattern, length, ok
}

// transTable is an open-addressing hash table from (state, symbol) to
// next state, packed into two flat arrays. Load factor is kept at or
// below 1/2 and probing is linear; lookups touch one or two cache lines
// and never allocate.
type transTable struct {
	keys []uint64 // (state+1)<<32 | sym; 0 = empty slot
	vals []int32
	mask uint64
}

func (t *transTable) init(edges int) {
	size := 16
	for size < edges*2 {
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
}

func transKey(state int32, sym uint32) uint64 {
	return (uint64(state)+1)<<32 | uint64(sym)
}

// mix is the 64-bit finalizer from splitmix64.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *transTable) put(state int32, sym uint32, next int32) {
	k := transKey(state, sym)
	slot := mix(k) & t.mask
	for t.keys[slot] != 0 {
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = k
	t.vals[slot] = next
}

func (t *transTable) get(state int32, sym uint32) (int32, bool) {
	k := transKey(state, sym)
	slot := mix(k) & t.mask
	for {
		cur := t.keys[slot]
		if cur == k {
			return t.vals[slot], true
		}
		if cur == 0 {
			return 0, false
		}
		slot = (slot + 1) & t.mask
	}
}

// foldTable maps surface words to symbols, case-insensitively, without
// allocating. Vocabulary words are stored lower-cased; lookups hash the
// probe word with ASCII case folding and compare fold-equal, so "CLIE",
// "Clie" and "clie" all resolve to one symbol with zero garbage. Words
// containing non-ASCII bytes take a Unicode slow path that may allocate
// — they cannot appear in the embedded English resources.
type foldTable struct {
	slots []uint32 // symbol+1; 0 = empty
	words []string // vocabulary, indexed by symbol-1
	mask  uint64
}

func (t *foldTable) init(words []string) {
	size := 16
	for size < len(words)*2 {
		size <<= 1
	}
	t.slots = make([]uint32, size)
	t.words = words
	t.mask = uint64(size - 1)
	for i, w := range words {
		slot := foldHash(w) & t.mask
		for t.slots[slot] != 0 {
			slot = (slot + 1) & t.mask
		}
		t.slots[slot] = uint32(i) + 1
	}
}

func (t *foldTable) lookup(word string) uint32 {
	if !asciiString(word) {
		// Unicode slow path: fold through ToLower (allocates only when
		// the word actually contains upper-case runes).
		word = strings.ToLower(word)
	}
	slot := foldHash(word) & t.mask
	for {
		sym := t.slots[slot]
		if sym == 0 {
			return noSym
		}
		if foldEqualASCII(t.words[sym-1], word) {
			return sym
		}
		slot = (slot + 1) & t.mask
	}
}

func asciiString(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// foldHash is FNV-1a over ASCII-lower-cased bytes.
func foldHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// foldEqualASCII reports a == b under ASCII case folding. The left side
// (stored vocabulary) is already lower-case.
func foldEqualASCII(lower, b string) bool {
	if len(lower) != len(b) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if lower[i] != c {
			return false
		}
	}
	return true
}
