package match

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// scanAll collects every match of the automaton over a word slice.
func scanAll(m *Matcher, words []string) []Match {
	var out []Match
	m.Scan(len(words), func(i int) uint32 { return m.Sym(words[i]) }, func(mt Match) {
		out = append(out, mt)
	})
	return out
}

func TestScanBasics(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"clie"})                  // 0
	b.Add([]string{"sony", "clie"})          // 1
	b.Add([]string{"t", "series", "clies"})  // 2
	b.Add([]string{"series"})                // 3
	m := b.Compile()

	words := strings.Fields("the Sony CLIE beats the T series CLIEs hands down")
	got := scanAll(m, words)
	want := []Match{
		{Pattern: 1, Start: 1, End: 3}, // sony clie (longer first at equal end)
		{Pattern: 0, Start: 2, End: 3}, // clie
		{Pattern: 3, Start: 6, End: 7}, // series
		{Pattern: 2, Start: 5, End: 8}, // t series clies
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan: got %v want %v", got, want)
	}
}

func TestScanOverlapsAndSuffixes(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"a", "b", "a"}) // 0
	b.Add([]string{"b", "a"})      // 1
	b.Add([]string{"a"})           // 2
	m := b.Compile()
	words := []string{"a", "b", "a", "b", "a"}
	got := scanAll(m, words)
	// ends at 1: a; ends at 3: aba, ba, a; ends at 5: aba, ba, a.
	want := []Match{
		{2, 0, 1},
		{0, 0, 3}, {1, 1, 3}, {2, 2, 3},
		{0, 2, 5}, {1, 3, 5}, {2, 4, 5},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan: got %v want %v", got, want)
	}
}

func TestCaseFolding(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"Battery", "LIFE"})
	m := b.Compile()
	for _, probe := range [][]string{
		{"battery", "life"},
		{"BATTERY", "LIFE"},
		{"Battery", "Life"},
	} {
		if got := scanAll(m, probe); len(got) != 1 || got[0].Start != 0 || got[0].End != 2 {
			t.Fatalf("probe %v: got %v", probe, got)
		}
	}
	if m.Sym("battery") == 0 || m.Sym("BaTTeRy") != m.Sym("battery") {
		t.Fatalf("Sym is not fold-insensitive")
	}
	if m.Sym("charger") != 0 {
		t.Fatalf("unknown word must map to symbol 0")
	}
}

func TestWalkAtLongest(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"battery"})                  // 0
	b.Add([]string{"battery", "life"})          // 1
	b.Add([]string{"battery", "life", "woes"})  // 2
	b.Add([]string{"life"})                     // 3
	m := b.Compile()
	words := []string{"the", "battery", "life", "woes", "continue"}
	sym := func(i int) uint32 { return m.Sym(words[i]) }

	var seen []int
	m.WalkAt(len(words), 1, sym, func(p, l int) bool {
		seen = append(seen, p)
		return true
	})
	if fmt.Sprint(seen) != "[0 1 2]" {
		t.Fatalf("WalkAt visited %v", seen)
	}
	p, l, ok := m.LongestAt(len(words), 1, sym)
	if !ok || p != 2 || l != 3 {
		t.Fatalf("LongestAt = %d,%d,%v", p, l, ok)
	}
	if _, _, ok := m.LongestAt(len(words), 0, sym); ok {
		t.Fatalf("no pattern starts at 'the'")
	}
	// "life" alone starts at 2 even though it is also a suffix of
	// "battery life": suffix outputs must not leak into WalkAt.
	p, l, ok = m.LongestAt(len(words), 2, sym)
	if !ok || p != 3 || l != 1 {
		t.Fatalf("LongestAt(2) = %d,%d,%v", p, l, ok)
	}
}

func TestEmptyMatcher(t *testing.T) {
	m := NewBuilder().Compile()
	if got := scanAll(m, []string{"anything", "at", "all"}); len(got) != 0 {
		t.Fatalf("empty matcher matched %v", got)
	}
	if _, _, ok := m.LongestAt(3, 0, func(int) uint32 { return 0 }); ok {
		t.Fatalf("empty matcher LongestAt matched")
	}
}

// TestDifferentialVsNaive cross-checks the automaton against a naive
// O(n*patterns) scanner on random texts over a small alphabet, where
// overlap and suffix-sharing cases are dense.
func TestDifferentialVsNaive(t *testing.T) {
	alphabet := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		var pats [][]string
		for p := 0; p < 12; p++ {
			n := 1 + rng.Intn(3)
			pat := make([]string, n)
			for i := range pat {
				pat[i] = alphabet[rng.Intn(len(alphabet))]
			}
			pats = append(pats, pat)
			b.Add(pat)
		}
		m := b.Compile()
		words := make([]string, 30)
		for i := range words {
			words[i] = alphabet[rng.Intn(len(alphabet))]
		}

		var want []Match
		for pi, pat := range pats {
			for i := 0; i+len(pat) <= len(words); i++ {
				hit := true
				for k := range pat {
					if words[i+k] != pat[k] {
						hit = false
						break
					}
				}
				if hit {
					want = append(want, Match{Pattern: pi, Start: i, End: i + len(pat)})
				}
			}
		}
		got := scanAll(m, words)
		canon := func(ms []Match) string {
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].Start != ms[j].Start {
					return ms[i].Start < ms[j].Start
				}
				if ms[i].End != ms[j].End {
					return ms[i].End < ms[j].End
				}
				return ms[i].Pattern < ms[j].Pattern
			})
			return fmt.Sprint(ms)
		}
		if canon(got) != canon(want) {
			t.Fatalf("trial %d: got %v want %v (patterns %v, words %v)",
				trial, got, want, pats, words)
		}
	}
}

func TestScanAllocs(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"sony", "clie"})
	b.Add([]string{"battery", "life"})
	b.Add([]string{"nr70"})
	m := b.Compile()
	words := strings.Fields("The Sony CLIE NR70 has Battery Life issues says SONY")
	sink := 0
	avg := testing.AllocsPerRun(100, func() {
		m.Scan(len(words), func(i int) uint32 { return m.Sym(words[i]) }, func(mt Match) {
			sink += mt.Pattern
		})
	})
	if avg != 0 {
		t.Fatalf("Scan allocates %.1f per run, want 0", avg)
	}
	_ = sink
}
