package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// The span/trace half of the package: a Span times one stage of work
// into a histogram, and a trace ID correlates every stage of one
// request (a document's trip through the pipeline, a mining deployment,
// an RPC fan-out) across log lines, cluster jobs and Vinci frames.
//
// Trace IDs are generated without math/rand: a process-unique base
// (seeded from the clock once at init) is mixed with an atomic sequence
// number, so concurrent generators never contend on a shared lock and a
// given process emits no duplicate IDs.

var (
	traceBase = uint64(time.Now().UnixNano())
	traceSeq  atomic.Uint64
)

// NewTraceID returns a 16-hex-digit request identifier, unique within
// the process and unlikely to collide across nodes.
func NewTraceID() string {
	n := traceSeq.Add(1)
	// splitmix64-style mixing so consecutive IDs don't look sequential.
	z := traceBase + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return fmt.Sprintf("%016x", z)
}

// Span is an in-flight timing of one stage; End records the elapsed
// nanoseconds into the histogram the span was started from. The zero
// Span is inert: End is a no-op, so optional instrumentation can pass
// spans around without nil checks.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins a span that End will record into h.
func (h *Histogram) Start() Span {
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(int64(d))
	return d
}

// ObserveDuration records a pre-measured duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Pipeline stage names, in document order. Each stage has a latency
// histogram named "pipeline.stage.<stage>.ns" in the registry; the
// miner stamps every document's trip through them.
const (
	StageTokenize  = "tokenize"
	StagePOS       = "pos"
	StageChunk     = "chunk"
	StageSpot      = "spot"
	StageDisambig  = "disambiguate"
	StageSentiment = "sentiment"
)

// Stages lists the pipeline stages in document order.
var Stages = []string{StageTokenize, StagePOS, StageChunk, StageSpot, StageDisambig, StageSentiment}

// Stage returns the latency histogram of one pipeline stage.
func (r *Registry) Stage(stage string) *Histogram {
	return r.Histogram("pipeline.stage." + stage + ".ns")
}
