package metrics

import (
	"encoding/json"
	"net/http"
)

// RegisterHTTP mounts the registry's read-only endpoints on mux:
// /metrics serves the sorted plain-text dump, /metrics.json the full
// snapshot (counters, gauges and histogram percentiles) as JSON.
func (r *Registry) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(r.Text()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}
