// Package metrics is the platform's observability substrate: a
// stdlib-only, allocation-light registry of atomic counters, gauges and
// fixed-bucket histograms, plus the span/trace API that stamps each
// document's trip through the mining pipeline.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Counter.Inc and Histogram.Observe are a handful of
//     atomic operations with no locks and no allocation, so they can sit
//     inside the WAL append path, the per-document ingest loop and the
//     per-call RPC path without moving the numbers they measure. Metric
//     handles are resolved by name once (registration takes a lock) and
//     then cached by the instrumented package in a package-level var.
//  2. Readable everywhere. A Registry renders as a deterministic sorted
//     text dump (one metric per line) and as a JSON snapshot, so the
//     same state backs the wfnode/wfserver HTTP endpoints, the Vinci
//     metrics service, and the committed bench artifacts.
//  3. Fixed memory. Histograms use fixed exponential buckets (no
//     per-observation storage); p50/p95/p99 are interpolated from the
//     bucket counts at snapshot time, never tracked online.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas belong on a Gauge).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may go up or down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket geometry. Latency histograms span 256ns..~34s in
// doubling buckets; size histograms span 1..2^27 the same way. Values
// past the last bound land in a single overflow bucket whose percentile
// estimate is the observed max.
const histBuckets = 28

var (
	durationBounds = makeBounds(256) // 256ns, 512ns, ... ~34.4s
	sizeBounds     = makeBounds(1)   // 1, 2, 4, ... ~134M
)

func makeBounds(base int64) []int64 {
	bounds := make([]int64, histBuckets)
	v := base
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with atomic counts. The zero
// value is unusable; obtain histograms from a Registry.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last bucket is overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Binary search the doubling bounds: ~5 compares, no allocation.
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a histogram's state at one instant, with
// interpolated percentiles.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot reads the histogram. Concurrent observations may straddle the
// read; the snapshot is internally consistent enough for monitoring
// (counts never go backwards, percentiles are bucket-interpolated).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s.P50 = h.quantile(counts, total, 0.50, s)
	s.P95 = h.quantile(counts, total, 0.95, s)
	s.P99 = h.quantile(counts, total, 0.99, s)
	return s
}

// quantile interpolates the q-quantile from bucket counts, clamped to
// the observed min/max so a single-bucket histogram reports exact values.
func (h *Histogram) quantile(counts []int64, total int64, q float64, s HistogramSnapshot) int64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			var lo, hi int64
			if i == 0 {
				lo, hi = 0, h.bounds[0]
			} else if i == len(h.bounds) {
				// Overflow bucket: everything we know is <= max.
				return s.Max
			} else {
				lo, hi = h.bounds[i-1], h.bounds[i]
			}
			frac := (rank - cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// Registry holds named metrics. Names are flat dotted paths
// ("vinci.client.store.get.calls"); a name is permanently bound to its
// first-registered kind.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every instrumented
// package records into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named latency histogram (nanosecond buckets,
// 256ns..~34s), creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, durationBounds)
}

// SizeHistogram returns the named size histogram (count buckets,
// 1..2^27), creating it on first use.
func (r *Registry) SizeHistogram(name string) *Histogram {
	return r.histogram(name, sizeBounds)
}

func (r *Registry) histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot is a registry's full state at one instant.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteText renders the registry as a deterministic plain-text dump, one
// metric per line, sorted by kind then name:
//
//	counter vinci.server.store.get.calls 42
//	gauge store.degraded 0
//	histogram pipeline.stage.tokenize.ns count=12 sum=48000 min=900 max=9000 mean=4000.0 p50=3800 p95=8800 p99=9000
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", n, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d min=%d max=%d mean=%.1f p50=%d p95=%d p99=%d\n",
			n, h.Count, h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders WriteText into a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// MarshalJSON renders the registry's snapshot as JSON.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
