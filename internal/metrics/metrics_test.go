package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramSnapshotPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("batch")
	// 100 observations of 1..100: p50 ~ 50, p95 ~ 95, p99 ~ 99 within
	// the doubling-bucket resolution (bucket (64,128] is wide).
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %d, want 5050", s.Sum)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	if s.P50 < 33 || s.P50 > 66 {
		t.Errorf("p50 = %d, want ~50 within bucket resolution", s.P50)
	}
	if s.P95 < 80 || s.P95 > 100 {
		t.Errorf("p95 = %d, want ~95 within bucket resolution", s.P95)
	}
	if s.P99 < 90 || s.P99 > 100 {
		t.Errorf("p99 = %d, want ~99 within bucket resolution", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p99=%d", s.P50, s.P95, s.P99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveDuration(1500 * time.Nanosecond)
	s := h.Snapshot()
	if s.Min != 1500 || s.Max != 1500 {
		t.Errorf("min/max = %d/%d, want 1500/1500", s.Min, s.Max)
	}
	if s.P50 != 1500 || s.P99 != 1500 {
		t.Errorf("p50/p99 = %d/%d, want clamped to 1500", s.P50, s.P99)
	}
}

func TestHistogramOverflowAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("big")
	h.Observe(-5)            // clamps to 0
	h.Observe(1 << 40)       // overflow bucket
	h.Observe(sizeBounds[0]) // smallest bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0 (negative clamped)", s.Min)
	}
	if s.Max != 1<<40 {
		t.Errorf("max = %d", s.Max)
	}
	if s.P99 != 1<<40 {
		t.Errorf("p99 = %d, want max for overflow bucket", s.P99)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("never").Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

// TestConcurrentStress hammers counters and histograms from many
// goroutines while snapshots are read concurrently — the -race guard
// for the lock-free hot path the instrumented packages rely on.
func TestConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		readers = 4
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("stress.calls")
			h := r.Histogram("stress.ns")
			g := r.Gauge("stress.depth")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(w*perG + i))
				g.Set(int64(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				if c := s.Counters["stress.calls"]; c < 0 {
					t.Errorf("negative counter %d", c)
					return
				}
				h := s.Histograms["stress.ns"]
				if h.Count > 0 && (h.P50 > h.P95 || h.P95 > h.P99) {
					t.Errorf("non-monotone percentiles under concurrency: %+v", h)
					return
				}
				_ = r.Text()
			}
		}()
	}
	go func() {
		// Writers finish on their own; give readers overlap then stop.
		time.Sleep(10 * time.Millisecond)
		close(stop)
	}()
	wg.Wait()
	if got := r.Counter("stress.calls").Value(); got != writers*perG {
		t.Errorf("final counter = %d, want %d", got, writers*perG)
	}
	if got := r.Histogram("stress.ns").Count(); got != writers*perG {
		t.Errorf("final histogram count = %d, want %d", got, writers*perG)
	}
}

// TestWriteTextGolden locks down the /metrics text rendering format.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("vinci.server.store.get.calls").Add(42)
	r.Counter("ingest.docs").Add(7)
	r.Gauge("store.degraded").Set(0)
	r.Gauge("cluster.breaker.open").Set(1)
	h := r.SizeHistogram("store.wal.batch.records")
	for _, v := range []int64{1, 2, 2, 4, 8} {
		h.Observe(v)
	}
	want := strings.Join([]string{
		"counter ingest.docs 7",
		"counter vinci.server.store.get.calls 42",
		"gauge cluster.breaker.open 1",
		"gauge store.degraded 0",
		"histogram store.wal.batch.records count=5 sum=17 min=1 max=8 mean=3.4 p50=1 p95=7 p99=7",
		"",
	}, "\n")
	if got := r.Text(); got != want {
		t.Errorf("text rendering drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Histogram("y.ns").Observe(1000)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["x"] != 1 {
		t.Errorf("counter lost in JSON: %+v", s)
	}
	if s.Histograms["y.ns"].Count != 1 {
		t.Errorf("histogram lost in JSON: %+v", s)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, n/8)
			for i := 0; i < n/8; i++ {
				local = append(local, NewTraceID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if len(id) != 16 {
					t.Errorf("trace ID %q not 16 hex digits", id)
					return
				}
				if seen[id] {
					t.Errorf("duplicate trace ID %q", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	if d := s.End(); d != 0 {
		t.Errorf("zero span End = %v, want 0", d)
	}
}

func TestStageHistogramNames(t *testing.T) {
	r := NewRegistry()
	sp := r.Stage(StageTokenize).Start()
	sp.End()
	s := r.Snapshot()
	if s.Histograms["pipeline.stage.tokenize.ns"].Count != 1 {
		t.Errorf("stage histogram missing: %v", s.Histograms)
	}
}
