package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.hits").Add(7)
	r.Histogram("http.lat.ns").Observe(500)
	mux := http.NewServeMux()
	r.RegisterHTTP(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "counter http.hits 7") {
		t.Errorf("/metrics missing counter line:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["http.hits"] != 7 {
		t.Errorf("json counter = %d, want 7", snap.Counters["http.hits"])
	}
	if snap.Histograms["http.lat.ns"].Count != 1 {
		t.Errorf("json histogram count = %d, want 1", snap.Histograms["http.lat.ns"].Count)
	}
}
