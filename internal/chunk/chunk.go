// Package chunk implements a shallow syntactic parser in the style of the
// Talent parser used by the paper: a finite-state chunker that groups
// POS-tagged tokens into base noun phrases, verb groups, adjective phrases
// and prepositional phrases, plus a clause analyzer that assigns the
// grammatical roles the sentiment pattern database is defined over —
// subject phrase (SP), object phrase (OP), complement phrase (CP) and
// prepositional phrases (PP) — and identifies the predicate verb.
package chunk

import (
	"strings"

	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

// PhraseType classifies a chunk.
type PhraseType int

// Phrase types emitted by the chunker.
const (
	NP   PhraseType = iota // base noun phrase
	VP                     // verb group (auxiliaries + main verb + adverbs)
	ADJP                   // adjective phrase
	PP                     // prepositional phrase (preposition + NP)
	ADVP                   // freestanding adverb phrase
	O                      // anything else (punctuation, conjunctions, ...)
)

// String returns the conventional chunk label.
func (p PhraseType) String() string {
	switch p {
	case NP:
		return "NP"
	case VP:
		return "VP"
	case ADJP:
		return "ADJP"
	case PP:
		return "PP"
	case ADVP:
		return "ADVP"
	}
	return "O"
}

// Phrase is a contiguous chunk of tagged tokens.
type Phrase struct {
	Type PhraseType
	// Tokens are the tagged tokens of the phrase.
	Tokens []pos.TaggedToken
	// Start and End are token indices into the chunked sentence
	// (half-open interval).
	Start, End int
	// Head is the index within Tokens of the head word: the last noun of
	// an NP, the main verb of a VP, the adjective of an ADJP, the
	// preposition of a PP.
	Head int
	// Prep is the lower-cased preposition for PP phrases, empty otherwise.
	Prep string
}

// HeadToken returns the head token of the phrase.
func (p Phrase) HeadToken() pos.TaggedToken {
	if p.Head >= 0 && p.Head < len(p.Tokens) {
		return p.Tokens[p.Head]
	}
	return pos.TaggedToken{}
}

// Text renders the phrase as space-joined token text.
func (p Phrase) Text() string {
	parts := make([]string, len(p.Tokens))
	for i, t := range p.Tokens {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// ContainsTokenIndex reports whether sentence token index i falls inside
// the phrase.
func (p Phrase) ContainsTokenIndex(i int) bool { return i >= p.Start && i < p.End }

// Role is a grammatical role used by sentiment patterns.
type Role int

// Grammatical roles per the paper's pattern notation.
const (
	RoleNone Role = iota
	RoleSP        // subject phrase
	RoleOP        // object phrase
	RoleCP        // complement (adjective) phrase
	RolePP        // prepositional phrase
)

// String returns the paper's two-letter role code.
func (r Role) String() string {
	switch r {
	case RoleSP:
		return "SP"
	case RoleOP:
		return "OP"
	case RoleCP:
		return "CP"
	case RolePP:
		return "PP"
	}
	return "-"
}

// Clause is one predicate and its role-bearing phrases.
type Clause struct {
	// Phrases are all chunks of the clause in order.
	Phrases []Phrase
	// Subject is the SP (nil if none found).
	Subject *Phrase
	// Predicate is the VP chunk holding the main verb (nil if verbless).
	Predicate *Phrase
	// Object is the OP (nil if none).
	Object *Phrase
	// Complement is the CP after a copula (nil if none).
	Complement *Phrase
	// PPs are the prepositional phrases of the clause.
	PPs []Phrase
	// MainVerb is the lexical main verb of the predicate.
	MainVerb pos.TaggedToken
	// ChainVerbs are the head verbs of each VP in the predicate chain, in
	// order ("fails to meet" -> [fails, meet]). The last equals MainVerb.
	ChainVerbs []pos.TaggedToken
	// Negated reports a negation adverb inside the verb group
	// (not, never, n't, hardly, seldom, rarely, barely, no longer).
	Negated bool
	// Passive reports a be-auxiliary followed by a past participle.
	Passive bool
}

// negationAdverbs per the paper: "an adverb with negative meaning, such as
// not, no, never, hardly, seldom, or little".
var negationAdverbs = map[string]bool{
	"not": true, "n't": true, "never": true, "hardly": true,
	"seldom": true, "rarely": true, "barely": true, "no": true,
	"little": true, "neither": true, "nor": true,
}

// IsNegationAdverb reports whether the word reverses polarity; the check
// folds case without allocating.
func IsNegationAdverb(w string) bool {
	v, _ := tokenize.FoldProbe(negationAdverbs, w)
	return v
}

// Chunker groups tagged tokens into phrases and clauses. The zero value is
// ready to use.
type Chunker struct{}

// New returns a ready-to-use Chunker.
func New() *Chunker { return &Chunker{} }

// Chunk partitions a tagged sentence into phrases.
func (c *Chunker) Chunk(ts []pos.TaggedToken) []Phrase {
	return c.AppendPhrases(nil, ts)
}

// AppendPhrases appends the phrases of a tagged sentence to dst and
// returns the extended slice.
func (c *Chunker) AppendPhrases(dst []Phrase, ts []pos.TaggedToken) []Phrase {
	phrases := dst
	i, n := 0, len(ts)
	for i < n {
		tag := ts[i].Tag
		switch {
		case tag == pos.IN || tag == pos.TO:
			// PP = IN NP? An "to" followed by a verb is an infinitive and
			// belongs to the verb group instead.
			if tag == pos.TO && i+1 < n && (ts[i+1].Tag.IsVerb() || ts[i+1].Tag == pos.RB) {
				j, head := c.scanVP(ts, i)
				phrases = append(phrases, Phrase{Type: VP, Tokens: ts[i:j], Start: i, End: j, Head: head - i})
				i = j
				continue
			}
			j := c.scanNPAfter(ts, i+1)
			if j > i+1 {
				np := ts[i+1 : j]
				phrases = append(phrases, Phrase{
					Type:   PP,
					Tokens: ts[i:j],
					Start:  i, End: j,
					Head: 0,
					Prep: strings.ToLower(ts[i].Text),
				})
				_ = np
				i = j
			} else {
				phrases = append(phrases, Phrase{Type: O, Tokens: ts[i : i+1], Start: i, End: i + 1, Head: 0})
				i++
			}
		case isNPStart(ts, i):
			j := c.scanNPAfter(ts, i)
			if j <= i {
				// No noun head materialized ("the best" with no noun):
				// fall back to a single O chunk so progress is guaranteed.
				phrases = append(phrases, Phrase{Type: O, Tokens: ts[i : i+1], Start: i, End: i + 1, Head: 0})
				i++
				break
			}
			head := lastNounIndex(ts, i, j)
			phrases = append(phrases, Phrase{Type: NP, Tokens: ts[i:j], Start: i, End: j, Head: head - i})
			i = j
		case tag.IsVerb() || tag == pos.MD:
			j, head := c.scanVP(ts, i)
			phrases = append(phrases, Phrase{Type: VP, Tokens: ts[i:j], Start: i, End: j, Head: head - i})
			i = j
		case tag.IsAdjective():
			j := i + 1
			// Adjective coordination: "vibrant and warm".
			for j < n {
				if ts[j].Tag.IsAdjective() {
					j++
					continue
				}
				if ts[j].Tag == pos.CC && j+1 < n && ts[j+1].Tag.IsAdjective() {
					j += 2
					continue
				}
				break
			}
			phrases = append(phrases, Phrase{Type: ADJP, Tokens: ts[i:j], Start: i, End: j, Head: 0})
			i = j
		case tag.IsAdverb():
			// A pre-adjectival adverb joins the ADJP ("really sharp"); a
			// pre-verbal one joins the VP via scanVP; otherwise ADVP.
			if i+1 < n && ts[i+1].Tag.IsAdjective() {
				j := i + 1
				for j < n && (ts[j].Tag.IsAdjective() || (ts[j].Tag == pos.CC && j+1 < n && ts[j+1].Tag.IsAdjective())) {
					if ts[j].Tag == pos.CC {
						j += 2
					} else {
						j++
					}
				}
				head := i + 1
				phrases = append(phrases, Phrase{Type: ADJP, Tokens: ts[i:j], Start: i, End: j, Head: head - i})
				i = j
				break
			}
			if i+1 < n && (ts[i+1].Tag.IsVerb() || ts[i+1].Tag == pos.MD) {
				j, head := c.scanVP(ts, i)
				phrases = append(phrases, Phrase{Type: VP, Tokens: ts[i:j], Start: i, End: j, Head: head - i})
				i = j
				break
			}
			phrases = append(phrases, Phrase{Type: ADVP, Tokens: ts[i : i+1], Start: i, End: i + 1, Head: 0})
			i++
		default:
			phrases = append(phrases, Phrase{Type: O, Tokens: ts[i : i+1], Start: i, End: i + 1, Head: 0})
			i++
		}
	}
	return phrases
}

// isNPStart reports whether an NP may begin at position i.
func isNPStart(ts []pos.TaggedToken, i int) bool {
	tag := ts[i].Tag
	switch {
	case tag == pos.DT, tag == pos.PDT, tag == pos.PRPS, tag == pos.PRP:
		return true
	case tag.IsNoun(), tag == pos.CD:
		return true
	case tag.IsAdjective() || tag == pos.VBG || tag == pos.VBN:
		// Attributive position: adjective directly before a noun chain.
		for j := i + 1; j < len(ts); j++ {
			t := ts[j].Tag
			if t.IsNoun() {
				return true
			}
			if !(t.IsAdjective() || t == pos.CD || t == pos.VBG || t == pos.VBN) {
				return false
			}
		}
	}
	return false
}

// scanNPAfter consumes an NP starting at i and returns the end index.
// Grammar: (PDT)? (DT|PRP$)? (CD|JJ*|VBG|VBN)* (NN|NNS|NNP|NNPS)+ (POS NP)?
// or a bare pronoun.
func (c *Chunker) scanNPAfter(ts []pos.TaggedToken, i int) int {
	n := len(ts)
	if i >= n {
		return i
	}
	j := i
	if ts[j].Tag == pos.PRP {
		return j + 1
	}
	if ts[j].Tag == pos.PDT {
		j++
	}
	if j < n && (ts[j].Tag == pos.DT || ts[j].Tag == pos.PRPS) {
		j++
	}
	mods := j
	for j < n && (ts[j].Tag.IsAdjective() || ts[j].Tag == pos.CD || ts[j].Tag == pos.VBG || ts[j].Tag == pos.VBN) {
		j++
	}
	nouns := j
	for j < n && ts[j].Tag.IsNoun() {
		j++
	}
	if j == nouns {
		// No noun head. An NP of pure modifiers is not an NP; back off
		// unless a determiner was consumed ("the best" as nominal — rare;
		// treat as not-NP).
		if nouns > mods {
			return i
		}
		return i
	}
	// Possessive recursion: "the camera's lens".
	if j < n && ts[j].Tag == pos.POS {
		k := c.scanNPAfter(ts, j+1)
		if k > j+1 {
			return k
		}
	}
	return j
}

// lastNounIndex finds the index (in sentence coordinates) of the last noun
// within [i, j).
func lastNounIndex(ts []pos.TaggedToken, i, j int) int {
	for k := j - 1; k >= i; k-- {
		if ts[k].Tag.IsNoun() || ts[k].Tag == pos.PRP {
			return k
		}
	}
	return j - 1
}

// scanVP consumes a verb group starting at i: adverbs, modals and
// auxiliaries followed by the main verb, with interleaved negations and a
// possible trailing particle. Returns the end index and the sentence index
// of the main (last) verb.
func (c *Chunker) scanVP(ts []pos.TaggedToken, i int) (end, mainVerb int) {
	n := len(ts)
	j := i
	mainVerb = i
	for j < n {
		t := ts[j].Tag
		if t.IsVerb() {
			mainVerb = j
			j++
			continue
		}
		if t == pos.MD || t == pos.TO {
			mainVerb = j
			j++
			continue
		}
		if t.IsAdverb() {
			// Adverb inside the group only if more verb follows ("does not
			// work") — a trailing adverb ("works well") belongs after.
			k := j
			for k < n && ts[k].Tag.IsAdverb() {
				k++
			}
			if k < n && (ts[k].Tag.IsVerb() || ts[k].Tag == pos.MD || ts[k].Tag == pos.TO) {
				j = k
				continue
			}
			break
		}
		if t == pos.RP {
			j++
			continue
		}
		break
	}
	if j == i {
		j = i + 1
	}
	return j, mainVerb
}

// Scratch holds reusable buffers for clause analysis. A zero Scratch is
// ready to use; passing the same Scratch to successive ClausesInto calls
// reuses the phrase, clause, verb-chain and PP storage. The returned
// clauses — and every pointer inside them — are valid only until the next
// call with the same Scratch.
type Scratch struct {
	phrases []Phrase
	clauses []Clause
	chain   []pos.TaggedToken
	pps     []Phrase
}

// Clauses chunks a tagged sentence and splits the chunks into clauses,
// assigning roles within each. Clause boundaries are coordinating
// conjunctions or punctuation separating two verb-bearing spans.
func (c *Chunker) Clauses(ts []pos.TaggedToken) []Clause {
	return c.ClausesInto(new(Scratch), ts)
}

// ClausesInto is Clauses with caller-owned scratch storage: phrases,
// clauses, verb chains and PP lists live in sc and are overwritten by the
// next call. Clause role pointers point into sc's phrase buffer.
func (c *Chunker) ClausesInto(sc *Scratch, ts []pos.TaggedToken) []Clause {
	sc.phrases = c.AppendPhrases(sc.phrases[:0], ts)
	sc.clauses = sc.clauses[:0]
	sc.chain = sc.chain[:0]
	sc.pps = sc.pps[:0]

	phrases := sc.phrases
	hasVP := func(ps []Phrase) bool {
		for i := range ps {
			if ps[i].Type == VP {
				return true
			}
		}
		return false
	}
	// Cut the phrase list at O-chunks (CC, comma, semicolon) whenever both
	// sides contain a VP.
	start := 0
	for i := range phrases {
		p := &phrases[i]
		if p.Type != O {
			continue
		}
		txt := p.Tokens[0].Text
		if txt != "," && txt != ";" && p.Tokens[0].Tag != pos.CC {
			continue
		}
		if hasVP(phrases[start:i]) && hasVP(phrases[i+1:]) {
			sc.clauses = append(sc.clauses, analyzeClause(sc, phrases[start:i]))
			start = i + 1
		}
	}
	if start < len(phrases) || len(sc.clauses) == 0 {
		sc.clauses = append(sc.clauses, analyzeClause(sc, phrases[start:]))
	}
	return sc.clauses
}

// analyzeClause assigns SP/OP/CP/PP roles around the main predicate.
// Role pointers reference the phrase slice in place; verb chains and PP
// lists are carved from sc's shared backing arrays.
func analyzeClause(sc *Scratch, phrases []Phrase) Clause {
	cl := Clause{Phrases: phrases}

	// Predicate: the first VP whose main verb is not an attributive
	// leftover; with chained VPs ("wants to love"), the last VP in the
	// chain carries the lexical verb.
	vpIdx := -1
	for i, p := range phrases {
		if p.Type == VP {
			vpIdx = i
			break
		}
	}
	if vpIdx < 0 {
		return cl
	}
	// Extend over immediately following VPs (infinitival chains).
	lastVP := vpIdx
	for i := vpIdx + 1; i < len(phrases) && phrases[i].Type == VP; i++ {
		lastVP = i
	}
	cl.Predicate = &phrases[lastVP]
	cl.MainVerb = phrases[lastVP].HeadToken()
	chainStart := len(sc.chain)
	for i := vpIdx; i <= lastVP; i++ {
		for _, t := range phrases[i].Tokens {
			if t.Tag.IsVerb() {
				sc.chain = append(sc.chain, t)
			}
		}
	}
	// Cap the carve so a later clause's append reallocates rather than
	// overwriting this clause's chain.
	cl.ChainVerbs = sc.chain[chainStart:len(sc.chain):len(sc.chain)]
	if len(cl.ChainVerbs) == 0 {
		cl.ChainVerbs = nil
	}

	// Negation and passivity from every VP in the chain.
	sawBe := false
	for i := vpIdx; i <= lastVP; i++ {
		for _, t := range phrases[i].Tokens {
			if t.Tag.IsAdverb() && IsNegationAdverb(t.Text) {
				cl.Negated = true
			}
			if isBeForm(t.Text) {
				sawBe = true
			}
		}
	}
	if sawBe && cl.MainVerb.Tag == pos.VBN {
		cl.Passive = true
	}

	// Subject: last NP before the predicate chain.
	for i := vpIdx - 1; i >= 0; i-- {
		if phrases[i].Type == NP {
			cl.Subject = &phrases[i]
			break
		}
	}

	// Post-verbal phrases: first NP is the object, first ADJP is the
	// complement; an NP directly after a copular main verb is also a
	// complement ("is a great product").
	copular := isBeForm(cl.MainVerb.Text) || isLinkingVerb(cl.MainVerb.Text)
	ppStart := len(sc.pps)
	for i := lastVP + 1; i < len(phrases); i++ {
		switch phrases[i].Type {
		case NP:
			if copular && cl.Complement == nil && cl.Object == nil {
				cl.Complement = &phrases[i]
			} else if cl.Object == nil {
				cl.Object = &phrases[i]
			}
		case ADJP:
			if cl.Complement == nil {
				cl.Complement = &phrases[i]
			}
		case PP:
			sc.pps = append(sc.pps, phrases[i])
		}
	}
	// Leading PPs ("Unlike the T series CLIEs, the NR70 ...") also belong
	// to the clause.
	for i := 0; i < vpIdx; i++ {
		if phrases[i].Type == PP {
			sc.pps = append(sc.pps, phrases[i])
		}
	}
	cl.PPs = sc.pps[ppStart:len(sc.pps):len(sc.pps)]
	if len(cl.PPs) == 0 {
		cl.PPs = nil
	}
	return cl
}

var beFormSet = map[string]bool{
	"be": true, "is": true, "are": true, "am": true, "was": true,
	"were": true, "been": true, "being": true, "'s": true, "'re": true,
	"'m": true,
}

// isBeForm reports whether the word is a form of "be", folding case
// without allocating.
func isBeForm(w string) bool {
	v, _ := tokenize.FoldProbe(beFormSet, w)
	return v
}

// linkingVerbs lists copular verbs other than be whose post-verbal
// adjective describes the subject.
var linkingVerbs = map[string]bool{
	"seem": true, "seems": true, "seemed": true, "look": true,
	"looks": true, "looked": true, "sound": true, "sounds": true,
	"sounded": true, "feel": true, "feels": true, "felt": true,
	"appear": true, "appears": true, "appeared": true, "remain": true,
	"remains": true, "remained": true, "stay": true, "stays": true,
	"stayed": true, "become": true, "becomes": true, "became": true,
	"get": true, "gets": true, "got": true, "turn": true, "turns": true,
	"turned": true, "prove": true, "proves": true, "proved": true,
	"taste": true, "tastes": true, "smell": true, "smells": true,
}

func isLinkingVerb(w string) bool {
	v, _ := tokenize.FoldProbe(linkingVerbs, w)
	return v
}
