package chunk

import (
	"strings"
	"testing"
	"testing/quick"

	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

var (
	tk = tokenize.New()
	tg = pos.NewTagger()
	ck = New()
)

func chunksOf(s string) []Phrase  { return ck.Chunk(tg.Tag(tk.Tokenize(s))) }
func clausesOf(s string) []Clause { return ck.Clauses(tg.Tag(tk.Tokenize(s))) }

func phraseSummary(ps []Phrase) string {
	var parts []string
	for _, p := range ps {
		parts = append(parts, p.Type.String()+"["+p.Text()+"]")
	}
	return strings.Join(parts, " ")
}

func TestChunkSimpleSVO(t *testing.T) {
	ps := chunksOf("This camera takes excellent pictures.")
	sum := phraseSummary(ps)
	for _, want := range []string{"NP[This camera]", "VP[takes]", "NP[excellent pictures]"} {
		if !strings.Contains(sum, want) {
			t.Errorf("missing %s in %s", want, sum)
		}
	}
}

func TestChunkCopulaAdjective(t *testing.T) {
	ps := chunksOf("The colors are vibrant.")
	sum := phraseSummary(ps)
	for _, want := range []string{"NP[The colors]", "VP[are]", "ADJP[vibrant]"} {
		if !strings.Contains(sum, want) {
			t.Errorf("missing %s in %s", want, sum)
		}
	}
}

func TestChunkPP(t *testing.T) {
	ps := chunksOf("I am impressed by the picture quality.")
	sum := phraseSummary(ps)
	if !strings.Contains(sum, "PP[by the picture quality]") {
		t.Errorf("missing PP in %s", sum)
	}
	var pp *Phrase
	for i := range ps {
		if ps[i].Type == PP {
			pp = &ps[i]
		}
	}
	if pp == nil || pp.Prep != "by" {
		t.Fatalf("PP prep = %v, want by (%s)", pp, sum)
	}
}

func TestChunkNegatedVerbGroup(t *testing.T) {
	ps := chunksOf("The NR70 does not require an adapter.")
	sum := phraseSummary(ps)
	if !strings.Contains(sum, "VP[does not require]") {
		t.Errorf("negation not inside VP: %s", sum)
	}
}

func TestChunkPossessiveNP(t *testing.T) {
	ps := chunksOf("The camera's lens is sharp.")
	sum := phraseSummary(ps)
	if !strings.Contains(sum, "NP[The camera 's lens]") {
		t.Errorf("possessive NP not joined: %s", sum)
	}
}

func TestChunkAdverbAdjective(t *testing.T) {
	ps := chunksOf("The zoom is really sluggish.")
	sum := phraseSummary(ps)
	if !strings.Contains(sum, "ADJP[really sluggish]") {
		t.Errorf("missing ADJP with adverb: %s", sum)
	}
	for _, p := range ps {
		if p.Type == ADJP && p.HeadToken().Text != "sluggish" {
			t.Errorf("ADJP head = %q, want sluggish", p.HeadToken().Text)
		}
	}
}

func TestClauseRolesSVO(t *testing.T) {
	cls := clausesOf("This camera takes excellent pictures.")
	if len(cls) != 1 {
		t.Fatalf("got %d clauses, want 1", len(cls))
	}
	cl := cls[0]
	if cl.Subject == nil || cl.Subject.Text() != "This camera" {
		t.Errorf("subject = %v", cl.Subject)
	}
	if cl.MainVerb.Text != "takes" {
		t.Errorf("main verb = %q", cl.MainVerb.Text)
	}
	if cl.Object == nil || cl.Object.Text() != "excellent pictures" {
		t.Errorf("object = %v", cl.Object)
	}
	if cl.Negated || cl.Passive {
		t.Errorf("unexpected negated=%v passive=%v", cl.Negated, cl.Passive)
	}
}

func TestClauseRolesCopula(t *testing.T) {
	cls := clausesOf("The colors are vibrant.")
	cl := cls[0]
	if cl.Subject == nil || cl.Subject.HeadToken().Text != "colors" {
		t.Errorf("subject = %v", cl.Subject)
	}
	if cl.Complement == nil || cl.Complement.Text() != "vibrant" {
		t.Errorf("complement = %v", cl.Complement)
	}
	if cl.Object != nil {
		t.Errorf("object should be nil for copula, got %v", cl.Object)
	}
}

func TestClauseCopulaNominalComplement(t *testing.T) {
	cls := clausesOf("The NR70 is a great product.")
	cl := cls[0]
	if cl.Complement == nil || !strings.Contains(cl.Complement.Text(), "great product") {
		t.Errorf("complement = %v", cl.Complement)
	}
}

func TestClausePassive(t *testing.T) {
	cls := clausesOf("I am impressed by the flash capabilities.")
	cl := cls[0]
	if !cl.Passive {
		t.Error("expected passive")
	}
	if len(cl.PPs) != 1 || cl.PPs[0].Prep != "by" {
		t.Errorf("PPs = %v", cl.PPs)
	}
	if cl.MainVerb.Text != "impressed" {
		t.Errorf("main verb = %q", cl.MainVerb.Text)
	}
}

func TestClauseNegation(t *testing.T) {
	for _, s := range []string{
		"The flash does not work.",
		"The battery never lasts.",
		"The menu doesn't respond.",
		"The zoom hardly works.",
	} {
		cls := clausesOf(s)
		if len(cls) == 0 || !cls[0].Negated {
			t.Errorf("%q: expected negated clause (got %+v)", s, cls)
		}
	}
	cls := clausesOf("The flash works.")
	if cls[0].Negated {
		t.Error("unnegated sentence marked negated")
	}
}

func TestClauseLeadingPP(t *testing.T) {
	cls := clausesOf("Unlike the T70, the NR70 does not require an adapter.")
	cl := cls[0]
	found := false
	for _, pp := range cl.PPs {
		if pp.Prep == "unlike" {
			found = true
		}
	}
	if !found {
		t.Errorf("leading unlike-PP missing: %+v", cl.PPs)
	}
	if cl.Subject == nil || cl.Subject.HeadToken().Text != "NR70" {
		t.Errorf("subject = %v", cl.Subject)
	}
	if !cl.Negated {
		t.Error("expected negation")
	}
}

func TestClauseCoordinationSplits(t *testing.T) {
	cls := clausesOf("The zoom is responsive and the menu is confusing.")
	if len(cls) != 2 {
		t.Fatalf("got %d clauses, want 2: %+v", len(cls), cls)
	}
	if cls[0].Subject.HeadToken().Text != "zoom" || cls[1].Subject.HeadToken().Text != "menu" {
		t.Errorf("clause subjects = %q, %q", cls[0].Subject.Text(), cls[1].Subject.Text())
	}
	if cls[0].Complement == nil || cls[1].Complement == nil {
		t.Fatal("both clauses need complements")
	}
	if cls[0].Complement.Text() != "responsive" || cls[1].Complement.Text() != "confusing" {
		t.Errorf("complements = %q, %q", cls[0].Complement.Text(), cls[1].Complement.Text())
	}
}

func TestClauseLinkingVerb(t *testing.T) {
	cls := clausesOf("The chorus sounds bland.")
	cl := cls[0]
	if cl.Complement == nil || cl.Complement.Text() != "bland" {
		t.Errorf("complement = %v (phrases: %s)", cl.Complement, phraseSummary(cl.Phrases))
	}
}

func TestClauseInfinitivalChain(t *testing.T) {
	cls := clausesOf("The company failed to meet expectations.")
	cl := cls[0]
	if cl.MainVerb.Text != "meet" {
		t.Errorf("main verb = %q, want meet", cl.MainVerb.Text)
	}
	if cl.Object == nil || cl.Object.HeadToken().Text != "expectations" {
		t.Errorf("object = %v", cl.Object)
	}
}

func TestVerblessClauseHasNoPredicate(t *testing.T) {
	cls := clausesOf("A truly wonderful experience overall")
	if len(cls) != 1 {
		t.Fatalf("got %d clauses", len(cls))
	}
	// "experience" is the nominal; whether a VP is found depends on
	// tagging, but a nil predicate must be representable without panics.
	_ = cls[0].Predicate
}

func TestIsNegationAdverb(t *testing.T) {
	for _, w := range []string{"not", "n't", "never", "hardly", "seldom", "NOT"} {
		if !IsNegationAdverb(w) {
			t.Errorf("IsNegationAdverb(%q) = false", w)
		}
	}
	if IsNegationAdverb("very") {
		t.Error("very is not a negation adverb")
	}
}

func TestPhraseTypeString(t *testing.T) {
	want := map[PhraseType]string{NP: "NP", VP: "VP", ADJP: "ADJP", PP: "PP", ADVP: "ADVP", O: "O"}
	for k, v := range want {
		if k.String() != v {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), v)
		}
	}
}

func TestRoleString(t *testing.T) {
	want := map[Role]string{RoleSP: "SP", RoleOP: "OP", RoleCP: "CP", RolePP: "PP", RoleNone: "-"}
	for k, v := range want {
		if k.String() != v {
			t.Errorf("Role %d String = %s, want %s", k, k.String(), v)
		}
	}
}

// Property: chunking partitions the token stream exactly.
func TestQuickChunksPartitionTokens(t *testing.T) {
	f := func(s string) bool {
		tagged := tg.Tag(tk.Tokenize(s))
		phrases := ck.Chunk(tagged)
		idx := 0
		for _, p := range phrases {
			if p.Start != idx || p.End <= p.Start || p.End > len(tagged) {
				return false
			}
			if len(p.Tokens) != p.End-p.Start {
				return false
			}
			idx = p.End
		}
		return idx == len(tagged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every clause's role phrases point at phrases of the clause and
// heads are in range.
func TestQuickClauseRolesWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, cl := range ck.Clauses(tg.Tag(tk.Tokenize(s))) {
			for _, p := range []*Phrase{cl.Subject, cl.Predicate, cl.Object, cl.Complement} {
				if p == nil {
					continue
				}
				if p.Head < 0 || p.Head >= len(p.Tokens) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuestionHasNoSubjectBeforeVerb(t *testing.T) {
	// Inverted questions put the verb first; the clause analyzer must not
	// invent a subject, so downstream sentiment stays silent on questions.
	cls := clausesOf("Is the flash really powerful?")
	if len(cls) == 0 {
		t.Fatal("no clause")
	}
	if cls[0].Subject != nil {
		t.Errorf("question got subject %q", cls[0].Subject.Text())
	}
}

func TestImperativeClause(t *testing.T) {
	cls := clausesOf("Buy the camera today.")
	cl := cls[0]
	if cl.Subject != nil {
		t.Errorf("imperative got subject %q", cl.Subject.Text())
	}
	if cl.Object == nil || cl.Object.HeadToken().Text != "camera" {
		t.Errorf("imperative object = %v", cl.Object)
	}
}

func TestPPAttachmentAfterObject(t *testing.T) {
	cls := clausesOf("The camera stores files in the usual format.")
	cl := cls[0]
	if cl.Object == nil || cl.Object.HeadToken().Text != "files" {
		t.Errorf("object = %v", cl.Object)
	}
	if len(cl.PPs) != 1 || cl.PPs[0].Prep != "in" {
		t.Errorf("PPs = %+v", cl.PPs)
	}
}

func TestThanPPRecognized(t *testing.T) {
	cls := clausesOf("The NR70 is better than the T600.")
	cl := cls[0]
	found := false
	for _, pp := range cl.PPs {
		if pp.Prep == "than" {
			found = true
		}
	}
	if !found {
		t.Errorf("than-PP missing: %+v", cl.PPs)
	}
}

func TestChainVerbsRecorded(t *testing.T) {
	cls := clausesOf("The product fails to meet basic expectations.")
	cl := cls[0]
	if len(cl.ChainVerbs) < 2 {
		t.Fatalf("chain = %+v", cl.ChainVerbs)
	}
	if cl.ChainVerbs[0].Text != "fails" || cl.ChainVerbs[len(cl.ChainVerbs)-1].Text != "meet" {
		t.Errorf("chain = %v, %v", cl.ChainVerbs[0].Text, cl.ChainVerbs[len(cl.ChainVerbs)-1].Text)
	}
}
