package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"webfountain/internal/store"
)

func seededStore(n, shards int) *store.Store {
	st := store.New(shards)
	for i := 0; i < n; i++ {
		st.Put(&store.Entity{ID: fmt.Sprintf("doc%03d", i), Text: fmt.Sprintf("text %d", i)})
	}
	return st
}

func TestRunEntityMinerAnnotatesEverything(t *testing.T) {
	st := seededStore(50, 8)
	c := New(st, 4)
	m := MinerFunc{MinerName: "marker", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return []store.Annotation{{Type: "seen", Key: e.ID}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 50 || stats.Annotations != 50 || stats.Failures != 0 {
		t.Errorf("stats = %+v", stats)
	}
	count := 0
	st.ForEach(func(e *store.Entity) error {
		anns := e.AnnotationsBy("marker")
		if len(anns) != 1 || anns[0].Key != e.ID {
			t.Errorf("entity %s annotations = %+v", e.ID, anns)
		}
		count++
		return nil
	})
	if count != 50 {
		t.Errorf("visited %d entities", count)
	}
}

func TestRunEntityMinerParallelism(t *testing.T) {
	st := seededStore(64, 16)
	c := New(st, 8)
	var concurrent, peak int64
	m := MinerFunc{MinerName: "p", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		cur := atomic.AddInt64(&concurrent, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		atomic.AddInt64(&concurrent, -1)
		return nil, nil
	}}
	if _, err := c.RunEntityMiner(m); err != nil {
		t.Fatal(err)
	}
	// Not a strict guarantee, but with 16 shards and 8 workers we expect
	// at least some overlap on any multicore machine; tolerate 1 to stay
	// robust on single-core CI.
	if peak < 1 {
		t.Errorf("peak concurrency = %d", peak)
	}
}

func TestRunEntityMinerCollectsFailures(t *testing.T) {
	st := seededStore(20, 4)
	c := New(st, 2)
	m := MinerFunc{MinerName: "flaky", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		if strings.HasSuffix(e.ID, "5") {
			return nil, fmt.Errorf("boom on %s", e.ID)
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if stats.Failures != 2 { // doc005, doc015
		t.Errorf("failures = %d", stats.Failures)
	}
	if stats.Entities != 20 {
		t.Errorf("entities = %d (run should continue past failures)", stats.Entities)
	}
	if !strings.Contains(err.Error(), "doc005") {
		t.Errorf("error detail missing: %v", err)
	}
}

func TestRunPipelineOrdersEntityThenCorpus(t *testing.T) {
	st := seededStore(10, 2)
	c := New(st, 2)
	var order []string
	em := MinerFunc{MinerName: "e1", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return []store.Annotation{{Type: "t"}}, nil
	}}
	cm := CorpusFunc{MinerName: "c1", Fn: func(s *store.Store) error {
		// Entity annotations must be visible by the time the corpus miner
		// runs.
		return s.ForEach(func(e *store.Entity) error {
			if len(e.AnnotationsBy("e1")) != 1 {
				return fmt.Errorf("corpus miner ran before entity miner finished")
			}
			order = append(order, e.ID)
			return nil
		})
	}}
	stats, err := c.RunPipeline([]EntityMiner{em}, []CorpusMiner{cm})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Miner != "e1" || stats[1].Miner != "c1" {
		t.Errorf("stats = %+v", stats)
	}
	if len(order) != 10 {
		t.Errorf("corpus miner saw %d entities", len(order))
	}
}

func TestRunPipelineCorpusErrorStops(t *testing.T) {
	st := seededStore(5, 1)
	c := New(st, 1)
	ran := false
	cm1 := CorpusFunc{MinerName: "bad", Fn: func(*store.Store) error { return fmt.Errorf("nope") }}
	cm2 := CorpusFunc{MinerName: "after", Fn: func(*store.Store) error { ran = true; return nil }}
	_, err := c.RunPipeline(nil, []CorpusMiner{cm1, cm2})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v", err)
	}
	if ran {
		t.Error("pipeline continued after corpus error")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Miner: "m", Entities: 3, Annotations: 2, Failures: 1}
	if got := s.String(); !strings.Contains(got, "m: 3 entities, 2 annotations, 1 failures") {
		t.Errorf("String = %q", got)
	}
}

func TestWorkerDefaulting(t *testing.T) {
	st := seededStore(4, 32)
	c := New(st, 0)
	if c.workers != 8 {
		t.Errorf("workers = %d, want capped 8", c.workers)
	}
	c2 := New(store.New(2), 0)
	if c2.workers != 2 {
		t.Errorf("workers = %d, want 2", c2.workers)
	}
}
