// Package cluster implements the WebFountain miner runtime: a
// shared-nothing execution engine that deploys entity-level miners in
// parallel across store shards and runs corpus-level miners over the
// whole collection.
//
// Entity-level miners process each entity in isolation and augment it
// with annotations (tokenizers, spotters, the sentiment miner). Corpus-
// level miners see the entire store (aggregate statistics, the feature
// extractor, index building). In the production system each cluster node
// owns a shard; here a worker pool owns shards within one process, which
// preserves the execution model — no cross-entity state inside an
// entity-level miner — at laptop scale.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/metrics"
	"webfountain/internal/store"
)

// EntityMiner is a miner that processes one entity at a time.
type EntityMiner interface {
	// Name identifies the miner; its annotations carry this name.
	Name() string
	// Process inspects the entity and returns annotations to attach. It
	// must not retain or mutate e. The returned slice is owned by the
	// cluster: it stamps the miner name into each annotation in place
	// before the write-back, so Process must return a slice it does not
	// itself retain.
	Process(e *store.Entity) ([]store.Annotation, error)
}

// CorpusMiner is a miner that needs the whole collection.
type CorpusMiner interface {
	// Name identifies the miner.
	Name() string
	// Run executes over the full store.
	Run(s *store.Store) error
}

// Stats summarizes one miner deployment.
type Stats struct {
	// Miner is the miner's name.
	Miner string
	// TraceID correlates this deployment's log lines, metrics and Vinci
	// calls; assigned when the deployment starts.
	TraceID string
	// Entities is the number of entities processed.
	Entities int
	// Annotations is the number of annotations attached.
	Annotations int
	// Failures is the number of entities whose processing errored after
	// all retries.
	Failures int
	// Retries is the number of re-attempted Process calls that transient
	// failures triggered.
	Retries int
	// Panics is the number of recovered miner panics.
	Panics int
	// Skipped is the number of entities skipped after the circuit
	// breaker tripped.
	Skipped int
	// Shed is the number of entities dropped because the deployment's
	// deadline budget ran out before they were reached.
	Shed int
	// Probes is the number of half-open probe entities admitted while
	// the breaker was tripped.
	Probes int
	// Recoveries is the number of times a successful probe closed the
	// breaker and resumed normal processing.
	Recoveries int
	// WriteFailures is the number of entities whose annotations were
	// mined but could not be written back to the store — the store was
	// in degraded read-only mode or its write-ahead log failed.
	WriteFailures int
	// BreakerTripped reports that the miner exhausted its error budget
	// and the deployment degraded to skip-and-report.
	BreakerTripped bool
	// Elapsed is the wall-clock duration of the deployment.
	Elapsed time.Duration
}

// String renders the stats in one line.
func (s Stats) String() string {
	out := fmt.Sprintf("%s: %d entities, %d annotations, %d failures in %v",
		s.Miner, s.Entities, s.Annotations, s.Failures, s.Elapsed)
	if s.Retries > 0 {
		out += fmt.Sprintf(", %d retries", s.Retries)
	}
	if s.Panics > 0 {
		out += fmt.Sprintf(", %d panics", s.Panics)
	}
	if s.WriteFailures > 0 {
		out += fmt.Sprintf(", %d write failures", s.WriteFailures)
	}
	if s.BreakerTripped {
		out += fmt.Sprintf(", breaker tripped (%d skipped, %d probes, %d recoveries)",
			s.Skipped, s.Probes, s.Recoveries)
	}
	if s.Shed > 0 {
		out += fmt.Sprintf(", %d shed on deadline", s.Shed)
	}
	return out
}

// RetryPolicy bounds per-entity retries of transient miner failures.
// Backoff is deliberately jitter-free so a seeded fault injector replays
// the exact same retry schedule.
type RetryPolicy struct {
	// MaxAttempts is the total number of Process attempts per entity,
	// including the first (values below 1 select 1: no retries).
	MaxAttempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it (0 means retry immediately).
	Backoff time.Duration
	// MaxBackoff caps the doubled backoff (0 means uncapped).
	MaxBackoff time.Duration
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffFor computes the sleep before retry number `retry` (1-based).
func (p RetryPolicy) backoffFor(retry int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	return d
}

// Config tunes the miner runtime's resilience behavior. The zero value
// reproduces the pre-fault-tolerance runtime: no retries, no timeout,
// no breaker.
type Config struct {
	// Workers is the worker-pool size (values below 1 select one per
	// shard, capped at 8).
	Workers int
	// Retry bounds retries of transient per-entity failures.
	Retry RetryPolicy
	// EntityTimeout bounds one Process call (0 means no timeout). A
	// timed-out entity counts as a transient failure; the abandoned
	// attempt finishes in the background and its result is discarded.
	EntityTimeout time.Duration
	// ErrorBudget is the number of failed entities (after retries) a
	// single deployment tolerates before its circuit breaker trips and
	// the remaining entities are skipped and reported (0 = never trip).
	ErrorBudget int
	// BreakerProbeAfter enables half-open probing of a tripped breaker:
	// every BreakerProbeAfter-th entity seen while the breaker is open is
	// admitted as a single probe (never more than one in flight). A
	// successful probe closes the breaker and processing resumes; a
	// failed probe re-opens it for another BreakerProbeAfter entities.
	// The count-based trigger keeps replays deterministic where a timer
	// would not. 0 disables probing: once tripped, the breaker stays
	// open for the rest of the deployment.
	BreakerProbeAfter int
	// DeployBudget bounds one deployment's wall-clock time. Entities not
	// reached before the budget expires are shed and counted in
	// Stats.Shed rather than processed late (0 = unbounded). This is the
	// miner-side half of the platform's deadline propagation: a caller
	// with d milliseconds of patience deploys with DeployBudget d and
	// gets a partial, on-time result instead of a complete, late one.
	DeployBudget time.Duration
}

// Cluster runs miners over a store.
type Cluster struct {
	store   *store.Store
	workers int
	cfg     Config
}

// New returns a cluster over the store with the given worker count
// (values below 1 select 1 worker per shard, capped at 8) and no
// resilience policy: failures are not retried and never trip a breaker.
func New(st *store.Store, workers int) *Cluster {
	return NewWithConfig(st, Config{Workers: workers})
}

// NewWithConfig returns a cluster with an explicit resilience config.
func NewWithConfig(st *store.Store, cfg Config) *Cluster {
	workers := cfg.Workers
	if workers < 1 {
		workers = st.NumShards()
		if workers > 8 {
			workers = 8
		}
	}
	return &Cluster{store: st, workers: workers, cfg: cfg}
}

// Store returns the cluster's backing store.
func (c *Cluster) Store() *store.Store { return c.store }

// maxErrors bounds how many per-entity errors are retained verbatim.
const maxErrors = 8

// minerMetrics is one miner's handle set, resolved once per deployment
// so the per-entity path touches only atomics.
type minerMetrics struct {
	entities *metrics.Counter
	failures *metrics.Counter
	retries  *metrics.Counter
	panics   *metrics.Counter
	entityNs *metrics.Histogram
	deployNs *metrics.Histogram
}

func minerMetricsFor(name string) *minerMetrics {
	reg := metrics.Default()
	p := "cluster.miner." + name + "."
	return &minerMetrics{
		entities: reg.Counter(p + "entities"),
		failures: reg.Counter(p + "failures"),
		retries:  reg.Counter(p + "retries"),
		panics:   reg.Counter(p + "panics"),
		entityNs: reg.Histogram(p + "entity.ns"),
		deployNs: reg.Histogram(p + "deploy.ns"),
	}
}

var (
	breakerOpen       = metrics.Default().Gauge("cluster.breaker.open")
	breakerTrips      = metrics.Default().Counter("cluster.breaker.trips")
	breakerProbes     = metrics.Default().Counter("cluster.breaker.probes")
	breakerRecoveries = metrics.Default().Counter("cluster.breaker.recoveries")
	deployShed        = metrics.Default().Counter("cluster.deploy.shed")
)

// runState is the shared bookkeeping of one deployment.
type runState struct {
	mu      sync.Mutex
	stats   Stats
	errs    []error
	tripped atomic.Bool
	mm      *minerMetrics
	// deadline is the deployment's absolute budget (zero = unbounded).
	deadline time.Time
	// Breaker half-open machinery, guarded by mu. gaugeOpen mirrors this
	// deployment's +1 contribution to the cluster.breaker.open gauge so
	// trip/recover/end-of-run keep it balanced.
	sinceTrip     int
	probeInFlight bool
	gaugeOpen     bool
}

// admitDecision is the per-entity verdict of the breaker state machine.
type admitDecision int

const (
	admitProcess admitDecision = iota // breaker closed: process normally
	admitProbe                        // breaker open: this entity is the probe
	admitSkip                         // breaker open: skip and count
)

// admit decides what to do with the next entity while the breaker is
// tripped. Callers check rs.tripped first; this re-checks under the lock
// because a concurrent probe may have closed the breaker in between.
func (rs *runState) admit(probeAfter int) admitDecision {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.tripped.Load() {
		return admitProcess
	}
	if probeAfter > 0 && !rs.probeInFlight {
		rs.sinceTrip++
		if rs.sinceTrip >= probeAfter {
			rs.sinceTrip = 0
			rs.probeInFlight = true
			rs.stats.Probes++
			breakerProbes.Inc()
			return admitProbe
		}
	}
	rs.stats.Skipped++
	return admitSkip
}

// isTransient classifies a per-entity failure: errors carrying
// Temporary() == true (injected faults, vinci retryable errors) and
// network timeouts are worth retrying; anything else — including a
// recovered panic — is treated as permanent.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// entityTimeoutError reports a Process call that outran EntityTimeout.
type entityTimeoutError struct{ d time.Duration }

func (e *entityTimeoutError) Error() string { return fmt.Sprintf("entity timed out after %v", e.d) }

// Temporary marks timeouts retryable: a stalled downstream dependency
// may well answer the next attempt.
func (e *entityTimeoutError) Temporary() bool { return true }

// procResult is the outcome of processing one entity through the
// retry/timeout/recovery stack.
type procResult struct {
	anns     []store.Annotation
	retries  int
	panicked bool
	err      error
}

// safeProcess runs one Process attempt with panic recovery.
func safeProcess(m EntityMiner, e *store.Entity) (anns []store.Annotation, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("miner panicked: %v", r)
		}
	}()
	anns, err = m.Process(e)
	return anns, false, err
}

// attemptOnce runs one Process attempt under the optional entity
// timeout. On timeout the attempt keeps running in a goroutine whose
// result is discarded (the buffered channel lets it exit when done).
func (c *Cluster) attemptOnce(m EntityMiner, e *store.Entity) ([]store.Annotation, bool, error) {
	if c.cfg.EntityTimeout <= 0 {
		return safeProcess(m, e)
	}
	type attempt struct {
		anns     []store.Annotation
		panicked bool
		err      error
	}
	ch := make(chan attempt, 1)
	go func() {
		anns, panicked, err := safeProcess(m, e)
		ch <- attempt{anns, panicked, err}
	}()
	timer := time.NewTimer(c.cfg.EntityTimeout)
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.anns, a.panicked, a.err
	case <-timer.C:
		return nil, false, &entityTimeoutError{d: c.cfg.EntityTimeout}
	}
}

// processEntity runs the full per-entity resilience stack: panic
// recovery, timeout, and bounded retries of transient failures.
func (c *Cluster) processEntity(m EntityMiner, e *store.Entity) procResult {
	var res procResult
	attempts := c.cfg.Retry.attempts()
	for attempt := 1; ; attempt++ {
		anns, panicked, err := c.attemptOnce(m, e)
		if panicked {
			res.panicked = true
		}
		if err == nil {
			res.anns = anns
			res.err = nil
			return res
		}
		res.err = err
		if attempt >= attempts || !isTransient(err) {
			return res
		}
		res.retries++
		if d := c.cfg.Retry.backoffFor(attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// RunEntityMiner deploys one entity-level miner across all shards in
// parallel. Per-entity failures do not abort the run: transient errors
// are retried within the retry policy, panics are recovered and counted,
// and once failures exhaust the error budget the breaker trips and the
// remaining entities are skipped. Up to maxErrors failure details are
// collected into the returned error (nil when every entity succeeded).
func (c *Cluster) RunEntityMiner(m EntityMiner) (Stats, error) {
	start := time.Now()
	shards := make(chan int)
	var wg sync.WaitGroup

	rs := &runState{
		stats: Stats{Miner: m.Name(), TraceID: metrics.NewTraceID()},
		mm:    minerMetricsFor(m.Name()),
	}
	if c.cfg.DeployBudget > 0 {
		rs.deadline = start.Add(c.cfg.DeployBudget)
	}

	workers := c.workers
	if workers > c.store.NumShards() {
		workers = c.store.NumShards()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range shards {
				c.mineShard(m, shard, rs)
			}
		}()
	}
	for i := 0; i < c.store.NumShards(); i++ {
		shards <- i
	}
	close(shards)
	wg.Wait()

	rs.stats.Elapsed = time.Since(start)
	rs.mm.deployNs.ObserveDuration(rs.stats.Elapsed)
	if rs.gaugeOpen {
		// The breaker is per-deployment; one still open closes when the
		// run ends. A probe-recovered breaker already gave back its +1.
		breakerOpen.Add(-1)
		rs.gaugeOpen = false
	}
	if rs.stats.BreakerTripped {
		rs.errs = append(rs.errs, fmt.Errorf(
			"breaker tripped after %d failures; %d entities skipped, %d probes, %d recoveries",
			rs.stats.Failures, rs.stats.Skipped, rs.stats.Probes, rs.stats.Recoveries))
	}
	if rs.stats.Shed > 0 {
		rs.errs = append(rs.errs, fmt.Errorf(
			"deployment budget %v exhausted; %d entities shed", c.cfg.DeployBudget, rs.stats.Shed))
	}
	if len(rs.errs) > 0 {
		return rs.stats, fmt.Errorf("cluster: %d entities failed under %s: %w",
			rs.stats.Failures, m.Name(), errors.Join(rs.errs...))
	}
	return rs.stats, nil
}

func (c *Cluster) mineShard(m EntityMiner, shard int, rs *runState) {
	_ = c.store.ForEachInShard(shard, func(e *store.Entity) error {
		if !rs.deadline.IsZero() && time.Now().After(rs.deadline) {
			rs.mu.Lock()
			rs.stats.Shed++
			rs.mu.Unlock()
			deployShed.Inc()
			return nil
		}
		probe := false
		if rs.tripped.Load() {
			switch rs.admit(c.cfg.BreakerProbeAfter) {
			case admitSkip:
				return nil
			case admitProbe:
				probe = true
			}
		}
		span := rs.mm.entityNs.Start()
		res := c.processEntity(m, e)
		span.End()
		rs.mm.entities.Inc()
		if res.retries > 0 {
			rs.mm.retries.Add(int64(res.retries))
		}
		if res.panicked {
			rs.mm.panics.Inc()
		}
		if res.err != nil {
			rs.mm.failures.Inc()
		}
		writeFailed := false
		if res.err == nil && len(res.anns) > 0 {
			// The write-back stays outside the stats critical section:
			// holding the mutex across Annotate would serialize all shard
			// workers through one lock. Annotate write-ahead-logs the
			// annotations on durable stores; a failure (degraded read-only
			// mode) makes the mined result unrecoverable, so it counts as
			// an entity failure and feeds the error budget like any other.
			// Stamp the miner name in place: Process hands over ownership
			// of the returned slice, so no defensive copy is needed.
			for i := range res.anns {
				res.anns[i].Miner = m.Name()
			}
			if _, werr := c.store.Annotate(e.ID, res.anns); werr != nil {
				res.err = fmt.Errorf("annotation write-back: %w", werr)
				writeFailed = true
			}
		}
		rs.mu.Lock()
		defer rs.mu.Unlock()
		rs.stats.Entities++
		rs.stats.Retries += res.retries
		if writeFailed {
			rs.stats.WriteFailures++
		}
		if res.panicked {
			rs.stats.Panics++
		}
		if res.err != nil {
			rs.stats.Failures++
			if len(rs.errs) < maxErrors {
				rs.errs = append(rs.errs, fmt.Errorf("%s: %w", e.ID, res.err))
			}
			if probe {
				// Failed probe: the breaker stays open and the next probe
				// waits another BreakerProbeAfter entities.
				rs.probeInFlight = false
			} else if c.cfg.ErrorBudget > 0 && rs.stats.Failures >= c.cfg.ErrorBudget && !rs.tripped.Load() {
				rs.stats.BreakerTripped = true
				rs.tripped.Store(true)
				rs.sinceTrip = 0
				if !rs.gaugeOpen {
					breakerOpen.Add(1)
					rs.gaugeOpen = true
				}
				breakerTrips.Inc()
			}
			return nil
		}
		if probe {
			// Successful probe: close the breaker and resume. The error
			// budget stays spent, so the next failure re-trips immediately —
			// recovery is optimistic, not amnesiac.
			rs.probeInFlight = false
			rs.tripped.Store(false)
			rs.stats.Recoveries++
			breakerRecoveries.Inc()
			if rs.gaugeOpen {
				breakerOpen.Add(-1)
				rs.gaugeOpen = false
			}
		}
		rs.stats.Annotations += len(res.anns)
		return nil
	})
}

// RunPipeline deploys entity miners in order, then corpus miners in order.
// It stops at the first corpus-miner error; entity-miner per-entity
// failures are reported but do not stop the pipeline.
func (c *Cluster) RunPipeline(entityMiners []EntityMiner, corpusMiners []CorpusMiner) ([]Stats, error) {
	var all []Stats
	var firstErr error
	for _, m := range entityMiners {
		st, err := c.RunEntityMiner(m)
		all = append(all, st)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range corpusMiners {
		start := time.Now()
		err := m.Run(c.store)
		elapsed := time.Since(start)
		minerMetricsFor(m.Name()).deployNs.ObserveDuration(elapsed)
		all = append(all, Stats{Miner: m.Name(), TraceID: metrics.NewTraceID(), Elapsed: elapsed})
		if err != nil {
			return all, fmt.Errorf("cluster: corpus miner %s: %w", m.Name(), err)
		}
	}
	return all, firstErr
}

// MinerFunc adapts a function to the EntityMiner interface.
type MinerFunc struct {
	// MinerName is returned by Name.
	MinerName string
	// Fn is invoked per entity.
	Fn func(e *store.Entity) ([]store.Annotation, error)
}

// Name implements EntityMiner.
func (m MinerFunc) Name() string { return m.MinerName }

// Process implements EntityMiner.
func (m MinerFunc) Process(e *store.Entity) ([]store.Annotation, error) { return m.Fn(e) }

// CorpusFunc adapts a function to the CorpusMiner interface.
type CorpusFunc struct {
	// MinerName is returned by Name.
	MinerName string
	// Fn is invoked with the store.
	Fn func(s *store.Store) error
}

// Name implements CorpusMiner.
func (m CorpusFunc) Name() string { return m.MinerName }

// Run implements CorpusMiner.
func (m CorpusFunc) Run(s *store.Store) error { return m.Fn(s) }
