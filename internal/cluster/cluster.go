// Package cluster implements the WebFountain miner runtime: a
// shared-nothing execution engine that deploys entity-level miners in
// parallel across store shards and runs corpus-level miners over the
// whole collection.
//
// Entity-level miners process each entity in isolation and augment it
// with annotations (tokenizers, spotters, the sentiment miner). Corpus-
// level miners see the entire store (aggregate statistics, the feature
// extractor, index building). In the production system each cluster node
// owns a shard; here a worker pool owns shards within one process, which
// preserves the execution model — no cross-entity state inside an
// entity-level miner — at laptop scale.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"webfountain/internal/store"
)

// EntityMiner is a miner that processes one entity at a time.
type EntityMiner interface {
	// Name identifies the miner; its annotations carry this name.
	Name() string
	// Process inspects the entity and returns annotations to attach. It
	// must not retain or mutate e.
	Process(e *store.Entity) ([]store.Annotation, error)
}

// CorpusMiner is a miner that needs the whole collection.
type CorpusMiner interface {
	// Name identifies the miner.
	Name() string
	// Run executes over the full store.
	Run(s *store.Store) error
}

// Stats summarizes one miner deployment.
type Stats struct {
	// Miner is the miner's name.
	Miner string
	// Entities is the number of entities processed.
	Entities int
	// Annotations is the number of annotations attached.
	Annotations int
	// Failures is the number of entities whose processing errored.
	Failures int
	// Elapsed is the wall-clock duration of the deployment.
	Elapsed time.Duration
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d entities, %d annotations, %d failures in %v",
		s.Miner, s.Entities, s.Annotations, s.Failures, s.Elapsed)
}

// Cluster runs miners over a store.
type Cluster struct {
	store   *store.Store
	workers int
}

// New returns a cluster over the store with the given worker count
// (values below 1 select 1 worker per shard, capped at 8).
func New(st *store.Store, workers int) *Cluster {
	if workers < 1 {
		workers = st.NumShards()
		if workers > 8 {
			workers = 8
		}
	}
	return &Cluster{store: st, workers: workers}
}

// Store returns the cluster's backing store.
func (c *Cluster) Store() *store.Store { return c.store }

// maxErrors bounds how many per-entity errors are retained verbatim.
const maxErrors = 8

// RunEntityMiner deploys one entity-level miner across all shards in
// parallel. Per-entity failures do not abort the run; up to maxErrors are
// collected into the returned error (nil when every entity succeeded).
func (c *Cluster) RunEntityMiner(m EntityMiner) (Stats, error) {
	start := time.Now()
	shards := make(chan int)
	var wg sync.WaitGroup

	var mu sync.Mutex
	stats := Stats{Miner: m.Name()}
	var errs []error

	workers := c.workers
	if workers > c.store.NumShards() {
		workers = c.store.NumShards()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range shards {
				c.mineShard(m, shard, &mu, &stats, &errs)
			}
		}()
	}
	for i := 0; i < c.store.NumShards(); i++ {
		shards <- i
	}
	close(shards)
	wg.Wait()

	stats.Elapsed = time.Since(start)
	if len(errs) > 0 {
		return stats, fmt.Errorf("cluster: %d entities failed under %s: %w",
			stats.Failures, m.Name(), errors.Join(errs...))
	}
	return stats, nil
}

func (c *Cluster) mineShard(m EntityMiner, shard int, mu *sync.Mutex, stats *Stats, errs *[]error) {
	_ = c.store.ForEachInShard(shard, func(e *store.Entity) error {
		anns, err := m.Process(e)
		mu.Lock()
		defer mu.Unlock()
		stats.Entities++
		if err != nil {
			stats.Failures++
			if len(*errs) < maxErrors {
				*errs = append(*errs, fmt.Errorf("%s: %w", e.ID, err))
			}
			return nil
		}
		if len(anns) > 0 {
			stats.Annotations += len(anns)
			c.store.Update(e.ID, func(stored *store.Entity) {
				for _, a := range anns {
					a.Miner = m.Name()
					stored.Annotate(a)
				}
			})
		}
		return nil
	})
}

// RunPipeline deploys entity miners in order, then corpus miners in order.
// It stops at the first corpus-miner error; entity-miner per-entity
// failures are reported but do not stop the pipeline.
func (c *Cluster) RunPipeline(entityMiners []EntityMiner, corpusMiners []CorpusMiner) ([]Stats, error) {
	var all []Stats
	var firstErr error
	for _, m := range entityMiners {
		st, err := c.RunEntityMiner(m)
		all = append(all, st)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range corpusMiners {
		start := time.Now()
		err := m.Run(c.store)
		all = append(all, Stats{Miner: m.Name(), Elapsed: time.Since(start)})
		if err != nil {
			return all, fmt.Errorf("cluster: corpus miner %s: %w", m.Name(), err)
		}
	}
	return all, firstErr
}

// MinerFunc adapts a function to the EntityMiner interface.
type MinerFunc struct {
	// MinerName is returned by Name.
	MinerName string
	// Fn is invoked per entity.
	Fn func(e *store.Entity) ([]store.Annotation, error)
}

// Name implements EntityMiner.
func (m MinerFunc) Name() string { return m.MinerName }

// Process implements EntityMiner.
func (m MinerFunc) Process(e *store.Entity) ([]store.Annotation, error) { return m.Fn(e) }

// CorpusFunc adapts a function to the CorpusMiner interface.
type CorpusFunc struct {
	// MinerName is returned by Name.
	MinerName string
	// Fn is invoked with the store.
	Fn func(s *store.Store) error
}

// Name implements CorpusMiner.
func (m CorpusFunc) Name() string { return m.MinerName }

// Run implements CorpusMiner.
func (m CorpusFunc) Run(s *store.Store) error { return m.Fn(s) }
