package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webfountain/internal/store"
)

// transientErr carries Temporary() == true, like injected faults and
// vinci retryable errors.
type transientErr struct{ n int }

func (e *transientErr) Error() string   { return fmt.Sprintf("transient failure #%d", e.n) }
func (e *transientErr) Temporary() bool { return true }

// TestRetryRecoversTransientFailures: a miner that fails transiently
// once per entity succeeds under a 2-attempt policy with zero failures.
func TestRetryRecoversTransientFailures(t *testing.T) {
	st := seededStore(30, 4)
	c := NewWithConfig(st, Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond},
	})
	var mu sync.Mutex
	failed := map[string]bool{}
	m := MinerFunc{MinerName: "flaky-once", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		mu.Lock()
		first := !failed[e.ID]
		failed[e.ID] = true
		mu.Unlock()
		if first {
			return nil, &transientErr{n: 1}
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err != nil {
		t.Fatalf("retries should absorb one transient failure per entity: %v", err)
	}
	if stats.Entities != 30 || stats.Failures != 0 || stats.Annotations != 30 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Retries != 30 {
		t.Errorf("retries = %d, want 30 (one per entity)", stats.Retries)
	}
}

// TestPermanentErrorsAreNotRetried: non-temporary failures burn no
// retry budget.
func TestPermanentErrorsAreNotRetried(t *testing.T) {
	st := seededStore(10, 2)
	c := NewWithConfig(st, Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 5}})
	var calls int
	m := MinerFunc{MinerName: "hard-fail", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		calls++
		return nil, errors.New("permanent")
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if calls != 10 {
		t.Errorf("calls = %d, want 10 (no retries for permanent errors)", calls)
	}
	if stats.Retries != 0 || stats.Failures != 10 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestPanicRecoveryCountsAndContinues: a panicking miner is recovered,
// counted, and the deployment finishes the remaining entities.
func TestPanicRecoveryCountsAndContinues(t *testing.T) {
	st := seededStore(20, 4)
	c := New(st, 2)
	m := MinerFunc{MinerName: "panicky", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		if strings.HasSuffix(e.ID, "7") {
			panic("miner bug on " + e.ID)
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "miner panicked") {
		t.Fatalf("err = %v", err)
	}
	if stats.Entities != 20 {
		t.Errorf("entities = %d (run should continue past panics)", stats.Entities)
	}
	if stats.Panics != 2 || stats.Failures != 2 { // doc007, doc017
		t.Errorf("stats = %+v", stats)
	}
}

// TestEntityTimeoutFailsSlowEntity: one stuck entity times out; the
// rest of the deployment completes.
func TestEntityTimeoutFailsSlowEntity(t *testing.T) {
	st := seededStore(12, 3)
	release := make(chan struct{})
	defer close(release)
	c := NewWithConfig(st, Config{Workers: 3, EntityTimeout: 25 * time.Millisecond})
	m := MinerFunc{MinerName: "stuck", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		if e.ID == "doc005" {
			<-release // hangs far past the timeout
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if stats.Failures != 1 || stats.Entities != 12 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Annotations != 11 {
		t.Errorf("annotations = %d, want 11", stats.Annotations)
	}
}

// TestBreakerTripsDeterministically: with one worker the breaker trips
// after exactly ErrorBudget failures and every remaining entity is
// skipped and reported.
func TestBreakerTripsDeterministically(t *testing.T) {
	st := seededStore(50, 1)
	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 5})
	m := MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("store shard offline")
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	if !stats.BreakerTripped {
		t.Error("BreakerTripped not reported")
	}
	if stats.Failures != 5 {
		t.Errorf("failures = %d, want exactly the error budget (5)", stats.Failures)
	}
	if stats.Skipped != 45 {
		t.Errorf("skipped = %d, want 45", stats.Skipped)
	}
	if stats.Entities != 5 {
		t.Errorf("entities = %d, want 5 (processing stops at the trip)", stats.Entities)
	}
	if !strings.Contains(stats.String(), "breaker tripped (45 skipped)") {
		t.Errorf("String = %q", stats.String())
	}
}

// TestBreakerZeroBudgetNeverTrips: the zero config preserves the old
// unbounded-failure behavior.
func TestBreakerZeroBudgetNeverTrips(t *testing.T) {
	st := seededStore(20, 4)
	c := New(st, 2)
	m := MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("nope")
	}}
	stats, _ := c.RunEntityMiner(m)
	if stats.BreakerTripped || stats.Skipped != 0 || stats.Entities != 20 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestClusterBackoffSchedule pins the deterministic (jitter-free)
// cluster backoff.
func TestClusterBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Backoff: 2 * time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got := p.backoffFor(i + 1); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
}
