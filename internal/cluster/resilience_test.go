package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webfountain/internal/faults"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// transientErr carries Temporary() == true, like injected faults and
// vinci retryable errors.
type transientErr struct{ n int }

func (e *transientErr) Error() string   { return fmt.Sprintf("transient failure #%d", e.n) }
func (e *transientErr) Temporary() bool { return true }

// TestRetryRecoversTransientFailures: a miner that fails transiently
// once per entity succeeds under a 2-attempt policy with zero failures.
func TestRetryRecoversTransientFailures(t *testing.T) {
	st := seededStore(30, 4)
	c := NewWithConfig(st, Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond},
	})
	var mu sync.Mutex
	failed := map[string]bool{}
	m := MinerFunc{MinerName: "flaky-once", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		mu.Lock()
		first := !failed[e.ID]
		failed[e.ID] = true
		mu.Unlock()
		if first {
			return nil, &transientErr{n: 1}
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err != nil {
		t.Fatalf("retries should absorb one transient failure per entity: %v", err)
	}
	if stats.Entities != 30 || stats.Failures != 0 || stats.Annotations != 30 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Retries != 30 {
		t.Errorf("retries = %d, want 30 (one per entity)", stats.Retries)
	}
}

// TestPermanentErrorsAreNotRetried: non-temporary failures burn no
// retry budget.
func TestPermanentErrorsAreNotRetried(t *testing.T) {
	st := seededStore(10, 2)
	c := NewWithConfig(st, Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 5}})
	var calls int
	m := MinerFunc{MinerName: "hard-fail", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		calls++
		return nil, errors.New("permanent")
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if calls != 10 {
		t.Errorf("calls = %d, want 10 (no retries for permanent errors)", calls)
	}
	if stats.Retries != 0 || stats.Failures != 10 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestPanicRecoveryCountsAndContinues: a panicking miner is recovered,
// counted, and the deployment finishes the remaining entities.
func TestPanicRecoveryCountsAndContinues(t *testing.T) {
	st := seededStore(20, 4)
	c := New(st, 2)
	m := MinerFunc{MinerName: "panicky", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		if strings.HasSuffix(e.ID, "7") {
			panic("miner bug on " + e.ID)
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "miner panicked") {
		t.Fatalf("err = %v", err)
	}
	if stats.Entities != 20 {
		t.Errorf("entities = %d (run should continue past panics)", stats.Entities)
	}
	if stats.Panics != 2 || stats.Failures != 2 { // doc007, doc017
		t.Errorf("stats = %+v", stats)
	}
}

// TestEntityTimeoutFailsSlowEntity: one stuck entity times out; the
// rest of the deployment completes.
func TestEntityTimeoutFailsSlowEntity(t *testing.T) {
	st := seededStore(12, 3)
	release := make(chan struct{})
	defer close(release)
	c := NewWithConfig(st, Config{Workers: 3, EntityTimeout: 25 * time.Millisecond})
	m := MinerFunc{MinerName: "stuck", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		if e.ID == "doc005" {
			<-release // hangs far past the timeout
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if stats.Failures != 1 || stats.Entities != 12 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Annotations != 11 {
		t.Errorf("annotations = %d, want 11", stats.Annotations)
	}
}

// TestBreakerTripsDeterministically: with one worker the breaker trips
// after exactly ErrorBudget failures and every remaining entity is
// skipped and reported.
func TestBreakerTripsDeterministically(t *testing.T) {
	st := seededStore(50, 1)
	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 5})
	m := MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("store shard offline")
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	if !stats.BreakerTripped {
		t.Error("BreakerTripped not reported")
	}
	if stats.Failures != 5 {
		t.Errorf("failures = %d, want exactly the error budget (5)", stats.Failures)
	}
	if stats.Skipped != 45 {
		t.Errorf("skipped = %d, want 45", stats.Skipped)
	}
	if stats.Entities != 5 {
		t.Errorf("entities = %d, want 5 (processing stops at the trip)", stats.Entities)
	}
	if !strings.Contains(stats.String(), "breaker tripped (45 skipped") {
		t.Errorf("String = %q", stats.String())
	}
}

// TestBreakerHalfOpenProbeRecovers: after the error budget trips, every
// BreakerProbeAfter-th entity is admitted as exactly one probe; when the
// fault has cleared the probe succeeds, the breaker closes and the rest
// of the deployment processes normally.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	st := seededStore(50, 1)
	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 3, BreakerProbeAfter: 5})
	var calls int
	m := MinerFunc{MinerName: "recovering", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		calls++
		if calls <= 3 {
			return nil, errors.New("downstream offline")
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	// Entities 1-3 fail and trip the breaker. Entities 4-7 are skipped,
	// entity 8 is the probe (the 5th seen while open); it succeeds, the
	// breaker closes, and entities 9-50 run normally.
	if !stats.BreakerTripped {
		t.Error("BreakerTripped not reported")
	}
	if stats.Probes != 1 {
		t.Errorf("probes = %d, want exactly 1", stats.Probes)
	}
	if stats.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", stats.Recoveries)
	}
	if stats.Skipped != 4 {
		t.Errorf("skipped = %d, want 4 (the window before the probe)", stats.Skipped)
	}
	if stats.Entities != 46 {
		t.Errorf("entities = %d, want 46 (3 failed + probe + 42 after recovery)", stats.Entities)
	}
	if stats.Annotations != 43 {
		t.Errorf("annotations = %d, want 43 (probe + everything after)", stats.Annotations)
	}
	if stats.Failures != 3 {
		t.Errorf("failures = %d, want 3", stats.Failures)
	}
}

// TestBreakerHalfOpenBothHedgeTransportsDown: a miner whose remote
// lookup rides a hedged client loses BOTH transports at once — the
// hedge fires on the primary's fast failure, finds the secondary just
// as dead, and the combined "both attempts failed" error feeds the
// cluster breaker exactly like a single-transport outage: trip after
// the error budget, skip the window, and close again on the first
// half-open probe once both transports are back. Hedging is a latency
// device, not a correctness one; this pins that a correlated
// two-transport failure still lands on the breaker path rather than
// looping or double-counting.
func TestBreakerHalfOpenBothHedgeTransportsDown(t *testing.T) {
	st := seededStore(50, 1)
	reg := vinci.NewRegistry()
	reg.RegisterIdempotent("lookup", func(req vinci.Request) vinci.Response {
		return vinci.OKResponse(map[string]string{"id": req.Param("id")})
	})
	gA, gB := faults.NewGate("transport-a"), faults.NewGate("transport-b")
	hedged := vinci.NewHedged(
		gA.Client(vinci.NewLocalClient(reg)),
		gB.Client(vinci.NewLocalClient(reg)),
		// Short fixed trigger; irrelevant here since a refused primary
		// hedges immediately, but it keeps the test fast if that changes.
		vinci.HedgeOptions{After: time.Millisecond, IsIdempotent: func(string) bool { return true }},
	)
	defer hedged.Close()
	// Both transports go down simultaneously — and differently: one
	// crashed, one partitioned. The hedged client cannot tell them apart
	// and neither can the breaker; both are just failed attempts.
	gA.Kill()
	gB.Partition()

	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 3, BreakerProbeAfter: 5})
	var calls int
	var tripErr error
	m := MinerFunc{MinerName: "remote-lookup", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		calls++
		if calls == 4 {
			// The 4th miner invocation is the half-open probe (1-3 spent
			// the budget; the open window skips without calling the
			// miner). The outage ends just before it.
			gA.Revive()
			gB.Heal()
		}
		_, err := hedged.Call(vinci.Request{Service: "lookup", Op: "get",
			Params: map[string]string{"id": e.ID}})
		if err != nil {
			if tripErr == nil {
				tripErr = err
			}
			return nil, err
		}
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	if tripErr == nil || !strings.Contains(tripErr.Error(), "both attempts failed") {
		t.Fatalf("miner error = %v, want the hedged both-attempts failure", tripErr)
	}
	// Every failed call must have burned BOTH transports: primary refused,
	// hedge fired, secondary refused too.
	if _, refA := gA.Counts(); refA != 3 {
		t.Errorf("primary refusals = %d, want 3 (one per budget-burning call)", refA)
	}
	if _, refB := gB.Counts(); refB != 3 {
		t.Errorf("secondary refusals = %d, want 3 (the hedge tried it every time)", refB)
	}
	// Same shape as the single-transport recovery test: trip at 3, skip 4,
	// probe recovers, remainder processes normally.
	if !stats.BreakerTripped {
		t.Error("BreakerTripped not reported")
	}
	if stats.Probes != 1 || stats.Recoveries != 1 {
		t.Errorf("probes = %d, recoveries = %d, want 1 and 1", stats.Probes, stats.Recoveries)
	}
	if stats.Failures != 3 || stats.Skipped != 4 {
		t.Errorf("failures = %d, skipped = %d, want 3 and 4", stats.Failures, stats.Skipped)
	}
	if stats.Entities != 46 || stats.Annotations != 43 {
		t.Errorf("entities = %d, annotations = %d, want 46 and 43", stats.Entities, stats.Annotations)
	}
	// After the heal the transports carried real traffic again.
	if delA, _ := gA.Counts(); delA == 0 {
		t.Error("primary delivered nothing after recovery")
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failing probe re-opens the
// breaker for another full window; with a fault that never clears the
// deployment alternates windows of skips with single failed probes.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	st := seededStore(30, 1)
	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 3, BreakerProbeAfter: 5})
	m := MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("still offline")
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	// 3 failures trip the breaker; the 27 remaining entities form five
	// windows of (4 skips + 1 failed probe) plus 2 trailing skips.
	if stats.Probes != 5 {
		t.Errorf("probes = %d, want 5 (one per window, never more)", stats.Probes)
	}
	if stats.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0 (every probe fails)", stats.Recoveries)
	}
	if stats.Failures != 8 {
		t.Errorf("failures = %d, want 8 (3 to trip + 5 failed probes)", stats.Failures)
	}
	if stats.Skipped != 22 {
		t.Errorf("skipped = %d, want 22", stats.Skipped)
	}
	if stats.Entities != 8 {
		t.Errorf("entities = %d, want 8", stats.Entities)
	}
}

// TestBreakerRetripsAfterRecovery: recovery is optimistic, not amnesiac —
// the error budget stays spent, so the first failure after a successful
// probe trips the breaker again.
func TestBreakerRetripsAfterRecovery(t *testing.T) {
	st := seededStore(20, 1)
	c := NewWithConfig(st, Config{Workers: 1, ErrorBudget: 2, BreakerProbeAfter: 2})
	var calls int
	m := MinerFunc{MinerName: "relapsing", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		calls++
		switch {
		case calls <= 2: // trip
			return nil, errors.New("offline")
		case calls == 3: // probe: succeeds, closes the breaker
			return []store.Annotation{{Type: "ok"}}, nil
		case calls == 4: // first post-recovery entity: re-trips immediately
			return nil, errors.New("relapse")
		default:
			return []store.Annotation{{Type: "ok"}}, nil
		}
	}}
	stats, _ := c.RunEntityMiner(m)
	if stats.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want at least the first probe to close the breaker", stats.Recoveries)
	}
	if stats.Failures != 3 {
		t.Errorf("failures = %d, want 3 (2 to trip + 1 relapse)", stats.Failures)
	}
	// After the relapse the breaker must be open again: at least one
	// entity in the following window is skipped, and a later probe
	// recovers once more.
	if stats.Skipped == 0 {
		t.Error("no entities skipped after the relapse — breaker did not re-open")
	}
	if stats.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2 (initial probe + post-relapse probe)", stats.Recoveries)
	}
}

// TestDeployBudgetShedsLateEntities: a deployment whose budget expires
// mid-run sheds the unreached entities instead of finishing late.
func TestDeployBudgetShedsLateEntities(t *testing.T) {
	st := seededStore(50, 1)
	c := NewWithConfig(st, Config{Workers: 1, DeployBudget: 30 * time.Millisecond})
	m := MinerFunc{MinerName: "slow", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		time.Sleep(5 * time.Millisecond)
		return []store.Annotation{{Type: "ok"}}, nil
	}}
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
	if stats.Shed == 0 {
		t.Error("no entities shed despite an expired budget")
	}
	if stats.Entities == 0 {
		t.Error("no entities processed before the budget expired")
	}
	if stats.Entities+stats.Shed != 50 {
		t.Errorf("entities %d + shed %d != 50", stats.Entities, stats.Shed)
	}
	// The run must end near the budget, not after 50 * 5ms.
	if stats.Elapsed > 150*time.Millisecond {
		t.Errorf("elapsed = %v, want well under the unshedded 250ms", stats.Elapsed)
	}
}

// TestBreakerZeroBudgetNeverTrips: the zero config preserves the old
// unbounded-failure behavior.
func TestBreakerZeroBudgetNeverTrips(t *testing.T) {
	st := seededStore(20, 4)
	c := New(st, 2)
	m := MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("nope")
	}}
	stats, _ := c.RunEntityMiner(m)
	if stats.BreakerTripped || stats.Skipped != 0 || stats.Entities != 20 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestClusterBackoffSchedule pins the deterministic (jitter-free)
// cluster backoff.
func TestClusterBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Backoff: 2 * time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got := p.backoffFor(i + 1); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
}
