package topology

import (
	"testing"
	"time"
)

// fakeClock drives the detector deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func newTestDetector(clk *fakeClock, opts DetectorOptions) *Detector {
	opts.now = clk.now
	return NewDetector(opts)
}

func TestDetectorExplicitFailureSuspectsImmediately(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{FailureThreshold: 1})
	d.ReportSuccess("n1")
	if d.Suspect("n1") {
		t.Fatal("healthy node suspected")
	}
	d.ReportFailure("n1")
	if !d.Suspect("n1") {
		t.Fatal("explicit failure must suspect within one probe, no accrual wait")
	}
	d.ReportSuccess("n1")
	if d.Suspect("n1") {
		t.Fatal("success must clear suspicion")
	}
}

func TestDetectorFailureThreshold(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{FailureThreshold: 3})
	d.ReportSuccess("n1")
	d.ReportFailure("n1")
	d.ReportFailure("n1")
	if d.Suspect("n1") {
		t.Fatal("suspected below the consecutive-failure threshold")
	}
	d.ReportFailure("n1")
	if !d.Suspect("n1") {
		t.Fatal("threshold reached but not suspected")
	}
}

func TestDetectorPhiAccruesWithSilence(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{PhiThreshold: 8})
	// Establish a steady 100ms probe cadence.
	for i := 0; i < 20; i++ {
		d.ReportSuccess("n1")
		clk.advance(100 * time.Millisecond)
	}
	if phi := d.Phi("n1"); phi > 1 {
		t.Fatalf("phi right after cadence established = %.2f, want small", phi)
	}
	if d.Suspect("n1") {
		t.Fatal("suspected while fresh")
	}
	// Silence: phi must grow monotonically and eventually cross the
	// threshold (t/(mean·ln10) ⇒ ~1.84s of silence at 100ms cadence).
	clk.advance(500 * time.Millisecond)
	low := d.Phi("n1")
	clk.advance(3 * time.Second)
	high := d.Phi("n1")
	if high <= low {
		t.Fatalf("phi did not grow with silence: %.2f then %.2f", low, high)
	}
	if !d.Suspect("n1") {
		t.Fatalf("prolonged silence (phi=%.2f) must suspect", high)
	}
}

func TestDetectorNeverSeenIsNotSuspected(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{})
	if d.Phi("cold") != 0 || d.Suspect("cold") {
		t.Fatal("a node never probed must not be suspected by silence alone")
	}
}

func TestDetectorForget(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{FailureThreshold: 1})
	d.ReportFailure("n1")
	if !d.Suspect("n1") {
		t.Fatal("setup: n1 should be suspected")
	}
	d.Forget("n1")
	if d.Suspect("n1") {
		t.Fatal("Forget must clear suspicion state")
	}
}

func TestDetectorSnapshot(t *testing.T) {
	clk := newFakeClock()
	d := newTestDetector(clk, DetectorOptions{FailureThreshold: 1})
	d.ReportSuccess("a")
	d.ReportFailure("b")
	snap := d.Snapshot()
	if len(snap) != 2 || snap[0].Node != "a" || snap[1].Node != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Suspected || !snap[1].Suspected {
		t.Fatalf("snapshot suspicion wrong: %+v", snap)
	}
	if snap[1].Fails != 1 {
		t.Fatalf("snapshot fails = %d, want 1", snap[1].Fails)
	}
}
