// Package topology implements shard placement and failure detection for
// a multi-node WebFountain deployment: a consistent-hash ring with
// virtual nodes and replica sets (placement), and a phi-accrual-style
// suspicion detector over health-probe observations (liveness).
//
// The ring is a pure function of (member set, seed, virtual-node count,
// replica factor, epoch): two routers given the same inputs compute
// byte-identical placement, which is what lets a stateless wfrouter tier
// scale out without a coordination service, and what makes ring-epoch
// convergence assertable byte-for-byte in the chaos harness. Rings are
// immutable; membership changes return a new ring with the epoch bumped,
// and the router swaps the active ring atomically so every request sees
// exactly one placement.
package topology

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Config tunes ring construction. The zero value selects 64 virtual
// nodes per member and a replica factor of 2.
type Config struct {
	// VNodes is the number of virtual nodes each member contributes to
	// the ring (default 64). More virtual nodes smooth the ownership
	// distribution; fewer make handoff ranges coarser.
	VNodes int
	// Replicas is the replica-set size R: every key lives on the R
	// distinct members clockwise from its hash (default 2). Values above
	// the member count clamp to the member count at placement time.
	Replicas int
	// Seed perturbs every hash on the ring, so two deployments with the
	// same member names still get independent placements, and a chaos
	// seed reproduces one exact placement.
	Seed int64
}

func (c Config) normalized() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	return c
}

// point is one virtual node: a position on the hash circle owned by a
// member.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a member set. All
// methods are safe for concurrent use.
type Ring struct {
	cfg     Config
	epoch   uint64
	members []string // sorted
	points  []point  // sorted by hash
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// seededHash hashes s with the ring seed mixed into the FNV-1a state, so
// placement is a deterministic function of (seed, s). The raw FNV value
// is run through a murmur3-style finalizer: FNV alone has weak avalanche
// in the high bits for inputs that differ only in a short suffix (like
// "node#0".."node#63"), which would cluster all of a member's virtual
// nodes in one arc of the circle and destroy the balance and
// minimal-disruption properties the ring exists to provide.
func seededHash(seed int64, s string) uint64 {
	h := uint64(fnvOffset64)
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(seed))
	for _, b := range sb {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// New builds the epoch-0 ring over the given members. Duplicate member
// names collapse; order does not matter (members are sorted, and every
// position is a pure hash).
func New(members []string, cfg Config) *Ring {
	cfg = cfg.normalized()
	return build(dedupeSorted(members), cfg, 0)
}

// Restore rebuilds a ring from a wire-transferred spec: the member
// set, config and epoch a peer router advertised. Because placement is
// a pure function of those inputs, the restored ring is byte-identical
// to the peer's — the caller verifies that by comparing Digest against
// the advertised one before adopting.
func Restore(members []string, cfg Config, epoch uint64) *Ring {
	cfg = cfg.normalized()
	return build(dedupeSorted(members), cfg, epoch)
}

func dedupeSorted(members []string) []string {
	out := append([]string(nil), members...)
	sort.Strings(out)
	j := 0
	for _, m := range out {
		if m == "" || (j > 0 && m == out[j-1]) {
			continue
		}
		out[j] = m
		j++
	}
	return out[:j]
}

func build(members []string, cfg Config, epoch uint64) *Ring {
	r := &Ring{cfg: cfg, epoch: epoch, members: members}
	r.points = make([]point, 0, len(members)*cfg.VNodes)
	for _, m := range members {
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, point{
				hash: seededHash(cfg.Seed, fmt.Sprintf("node|%s#%d", m, v)),
				node: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // total order: hash collisions cannot flip placement
	})
	return r
}

// Epoch is the ring's generation number; every membership change (and
// every rejoin acknowledgement) bumps it by one.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Members returns the member names, sorted. The caller must not mutate
// the returned slice.
func (r *Ring) Members() []string { return r.members }

// NumMembers returns the member count.
func (r *Ring) NumMembers() int { return len(r.members) }

// Replicas is the configured replica-set size R.
func (r *Ring) Replicas() int { return r.cfg.Replicas }

// Seed is the placement seed the ring was built with.
func (r *Ring) Seed() int64 { return r.cfg.Seed }

// VNodes is the per-member virtual-node count the ring was built with.
func (r *Ring) VNodes() int { return r.cfg.VNodes }

// Has reports whether node is a ring member.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.members, node)
	return i < len(r.members) && r.members[i] == node
}

// successor returns the index of the first point at or after hash,
// wrapping to 0 past the end.
func (r *Ring) successor(hash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		return 0
	}
	return i
}

// ReplicaSet returns the R distinct members that own key, primary first,
// walking clockwise from the key's hash. With fewer than R members every
// member owns every key. The result is freshly allocated.
func (r *Ring) ReplicaSet(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	want := r.cfg.Replicas
	if want > len(r.members) {
		want = len(r.members)
	}
	set := make([]string, 0, want)
	start := r.successor(seededHash(r.cfg.Seed, "key|"+key))
	for i := 0; i < len(r.points) && len(set) < want; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !contains(set, n) {
			set = append(set, n)
		}
	}
	return set
}

func contains(set []string, n string) bool {
	for _, s := range set {
		if s == n {
			return true
		}
	}
	return false
}

// Primary returns the key's primary owner ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(seededHash(r.cfg.Seed, "key|"+key))].node
}

// Owns reports whether node is in key's replica set.
func (r *Ring) Owns(node, key string) bool {
	return contains(r.ReplicaSet(key), node)
}

// WithNode returns a new ring with node added and the epoch bumped. If
// node is already a member the receiver is returned unchanged (no epoch
// bump) — an aborted or repeated join must not advance the epoch, or
// per-seed convergence would depend on how many attempts it took.
func (r *Ring) WithNode(node string) *Ring {
	if node == "" || r.Has(node) {
		return r
	}
	return build(dedupeSorted(append(append([]string(nil), r.members...), node)), r.cfg, r.epoch+1)
}

// WithoutNode returns a new ring with node removed and the epoch bumped,
// or the receiver unchanged when node is not a member.
func (r *Ring) WithoutNode(node string) *Ring {
	if !r.Has(node) {
		return r
	}
	members := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != node {
			members = append(members, m)
		}
	}
	return build(members, r.cfg, r.epoch+1)
}

// NextEpoch returns a ring with identical membership and placement but
// the epoch bumped — the acknowledgement a recovered node's catch-up
// completed and readers may treat it as a full replica again.
func (r *Ring) NextEpoch() *Ring {
	cp := *r
	cp.epoch++
	return &cp
}

// RoleCounts reports how many virtual-node ranges the node serves as
// primary and as a non-primary replica — the per-shard role summary the
// health service exposes. Both are zero for a non-member.
func (r *Ring) RoleCounts(node string) (primaries, replicas int) {
	if len(r.points) == 0 {
		return 0, 0
	}
	want := r.cfg.Replicas
	if want > len(r.members) {
		want = len(r.members)
	}
	for i := range r.points {
		// The range ending at point i is owned by the distinct nodes
		// starting at point i: its primary is points[i].node, its replicas
		// the next distinct nodes clockwise.
		if r.points[i].node == node {
			primaries++
			continue
		}
		seen := []string{r.points[i].node}
		for j := 1; j < len(r.points) && len(seen) < want; j++ {
			n := r.points[(i+j)%len(r.points)].node
			if contains(seen, n) {
				continue
			}
			if n == node {
				replicas++
				break
			}
			seen = append(seen, n)
		}
	}
	return primaries, replicas
}

// Digest returns a hex SHA-256 over the ring's canonical serialization:
// epoch, config, members and every point in order. Two routers (or two
// chaos runs of one seed) that converged to the same ring produce
// byte-identical digests.
func (r *Ring) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "epoch=%d seed=%d vnodes=%d replicas=%d\n", r.epoch, r.cfg.Seed, r.cfg.VNodes, r.cfg.Replicas)
	fmt.Fprintf(h, "members=%s\n", strings.Join(r.members, ","))
	var pb [8]byte
	for _, p := range r.points {
		binary.LittleEndian.PutUint64(pb[:], p.hash)
		h.Write(pb[:])
		h.Write([]byte(p.node))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the ring compactly.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(epoch=%d, %d members, R=%d, %d vnodes/member, seed=%d)",
		r.epoch, len(r.members), r.cfg.Replicas, r.cfg.VNodes, r.cfg.Seed)
}
