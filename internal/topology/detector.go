// Phi-accrual-style failure detection (Hayashibara et al., "The φ
// accrual failure detector"): instead of a binary alive/dead flag, each
// node accrues a suspicion level φ that grows the longer it goes without
// a successful probe, scaled by the node's own observed probe cadence.
// The router marks a node suspected when φ crosses a threshold — or
// immediately on enough consecutive explicit probe failures, the fast
// path that lets failover complete within one probe interval of a kill.
package topology

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DetectorOptions tunes a Detector. The zero value is usable.
type DetectorOptions struct {
	// PhiThreshold is the accrued suspicion level at which a silent node
	// (no explicit failures, just no recent successes) becomes suspected
	// (default 8 — roughly "this silence had a 1e-8 chance under the
	// observed cadence").
	PhiThreshold float64
	// FailureThreshold is the number of consecutive explicit probe
	// failures that suspect a node immediately, bypassing accrual
	// (default 1: a refused connection is much stronger evidence than
	// silence, and waiting out φ would stretch failover past one probe
	// interval).
	FailureThreshold int
	// Window is how many recent inter-arrival intervals feed the cadence
	// estimate (default 32).
	Window int
	// MinInterval floors the estimated mean inter-arrival time so a burst
	// of rapid successes cannot make φ hair-triggered (default 10ms).
	MinInterval time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

func (o DetectorOptions) normalized() DetectorOptions {
	if o.PhiThreshold <= 0 {
		o.PhiThreshold = 8
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 1
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.MinInterval <= 0 {
		o.MinInterval = 10 * time.Millisecond
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// nodeState is one node's observation history.
type nodeState struct {
	last      time.Time // last successful probe
	intervals []float64 // recent inter-arrival times, seconds (ring buffer)
	next      int       // ring-buffer write cursor
	count     int       // observations recorded (≤ len(intervals))
	fails     int       // consecutive explicit failures since last success
	everSeen  bool      // at least one success observed
}

// Detector accrues per-node suspicion from probe outcomes. Safe for
// concurrent use; the router's probe loop and its request paths both
// report into it (every routed call doubles as a probe, which is what
// keeps detection latency at one request rather than one timer tick).
type Detector struct {
	opts DetectorOptions

	mu    sync.Mutex
	nodes map[string]*nodeState
}

// NewDetector builds a detector.
func NewDetector(opts DetectorOptions) *Detector {
	return &Detector{opts: opts.normalized(), nodes: make(map[string]*nodeState)}
}

func (d *Detector) state(node string) *nodeState {
	st := d.nodes[node]
	if st == nil {
		st = &nodeState{intervals: make([]float64, d.opts.Window)}
		d.nodes[node] = st
	}
	return st
}

// ReportSuccess records a successful probe or call: the node's suspicion
// resets and its cadence estimate absorbs the new inter-arrival time.
func (d *Detector) ReportSuccess(node string) {
	now := d.opts.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state(node)
	if st.everSeen {
		st.intervals[st.next] = now.Sub(st.last).Seconds()
		st.next = (st.next + 1) % len(st.intervals)
		if st.count < len(st.intervals) {
			st.count++
		}
	}
	st.last = now
	st.everSeen = true
	st.fails = 0
}

// ReportFailure records an explicit probe or call failure (refused,
// timed out, transport error). Enough consecutive failures suspect the
// node immediately, regardless of φ.
func (d *Detector) ReportFailure(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state(node).fails++
}

// Forget drops all state for a node (it left the ring).
func (d *Detector) Forget(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.nodes, node)
}

// meanInterval estimates the node's probe cadence in seconds.
func (d *Detector) meanInterval(st *nodeState) float64 {
	floor := d.opts.MinInterval.Seconds()
	if st.count == 0 {
		return floor
	}
	var sum float64
	for i := 0; i < st.count; i++ {
		sum += st.intervals[i]
	}
	if mean := sum / float64(st.count); mean > floor {
		return mean
	}
	return floor
}

// Phi returns the node's current accrued suspicion. Under the
// exponential inter-arrival model, the probability a live node would
// still be silent after t is exp(-t/mean), so φ = -log10 of that =
// t / (mean·ln10). A node never seen has φ 0 until it fails explicitly —
// silence before first contact is indistinguishable from slow startup.
func (d *Detector) Phi(node string) float64 {
	now := d.opts.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.nodes[node]
	if st == nil || !st.everSeen {
		return 0
	}
	t := now.Sub(st.last).Seconds()
	if t <= 0 {
		return 0
	}
	return t / (d.meanInterval(st) * math.Ln10)
}

// Suspect reports whether the node is currently suspected: either
// enough consecutive explicit failures, or accrued φ past the threshold.
func (d *Detector) Suspect(node string) bool {
	d.mu.Lock()
	st := d.nodes[node]
	fails := 0
	if st != nil {
		fails = st.fails
	}
	d.mu.Unlock()
	if fails >= d.opts.FailureThreshold {
		return true
	}
	return d.Phi(node) >= d.opts.PhiThreshold
}

// NodeHealth is one node's snapshot for status reporting.
type NodeHealth struct {
	Node      string
	Phi       float64
	Fails     int
	Suspected bool
}

// Snapshot reports every tracked node's health, sorted by name.
func (d *Detector) Snapshot() []NodeHealth {
	d.mu.Lock()
	names := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		names = append(names, n)
	}
	d.mu.Unlock()
	sort.Strings(names)
	out := make([]NodeHealth, 0, len(names))
	for _, n := range names {
		d.mu.Lock()
		fails := 0
		if st := d.nodes[n]; st != nil {
			fails = st.fails
		}
		d.mu.Unlock()
		out = append(out, NodeHealth{Node: n, Phi: d.Phi(n), Fails: fails, Suspected: d.Suspect(n)})
	}
	return out
}
