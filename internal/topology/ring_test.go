package topology

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("doc-%06d", i)
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"node-b", "node-a", "node-c"}
	a := New(members, Config{Seed: 42})
	b := New([]string{"node-c", "node-a", "node-b"}, Config{Seed: 42}) // order must not matter
	if a.Digest() != b.Digest() {
		t.Fatalf("same members+seed produced different digests:\n%s\n%s", a.Digest(), b.Digest())
	}
	for _, k := range ringKeys(200) {
		sa, sb := a.ReplicaSet(k), b.ReplicaSet(k)
		if len(sa) != len(sb) {
			t.Fatalf("replica set size mismatch for %q", k)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("placement mismatch for %q: %v vs %v", k, sa, sb)
			}
		}
	}
	if c := New(members, Config{Seed: 43}); c.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical digests")
	}
}

func TestRingReplicaSetProperties(t *testing.T) {
	r := New([]string{"n1", "n2", "n3", "n4"}, Config{Seed: 7, Replicas: 3})
	for _, k := range ringKeys(500) {
		set := r.ReplicaSet(k)
		if len(set) != 3 {
			t.Fatalf("want 3 replicas for %q, got %v", k, set)
		}
		seen := map[string]bool{}
		for _, n := range set {
			if seen[n] {
				t.Fatalf("duplicate node in replica set for %q: %v", k, set)
			}
			seen[n] = true
		}
		if set[0] != r.Primary(k) {
			t.Fatalf("replica set head %q != primary %q for key %q", set[0], r.Primary(k), k)
		}
		if !r.Owns(set[1], k) || r.Owns("n-absent", k) {
			t.Fatalf("Owns inconsistent with ReplicaSet for %q", k)
		}
	}
}

func TestRingReplicasClampToMembers(t *testing.T) {
	r := New([]string{"only"}, Config{Seed: 1, Replicas: 3})
	if set := r.ReplicaSet("k"); len(set) != 1 || set[0] != "only" {
		t.Fatalf("single-member ring should place everything on it, got %v", set)
	}
}

func TestRingMembershipChangesBumpEpoch(t *testing.T) {
	r := New([]string{"n1", "n2"}, Config{Seed: 11})
	if r.Epoch() != 0 {
		t.Fatalf("fresh ring epoch = %d, want 0", r.Epoch())
	}
	r2 := r.WithNode("n3")
	if r2.Epoch() != 1 || !r2.Has("n3") {
		t.Fatalf("WithNode: epoch=%d has=%v", r2.Epoch(), r2.Has("n3"))
	}
	// Re-adding an existing member must not bump the epoch: repeated or
	// aborted join attempts would otherwise make convergence depend on
	// attempt count.
	if r3 := r2.WithNode("n3"); r3 != r2 {
		t.Fatal("re-adding a member must be a no-op")
	}
	if r.WithoutNode("absent") != r {
		t.Fatal("removing a non-member must be a no-op")
	}
	r4 := r2.WithoutNode("n1")
	if r4.Epoch() != 2 || r4.Has("n1") {
		t.Fatalf("WithoutNode: epoch=%d has=%v", r4.Epoch(), r4.Has("n1"))
	}
	r5 := r4.NextEpoch()
	if r5.Epoch() != 3 || r5.NumMembers() != r4.NumMembers() {
		t.Fatalf("NextEpoch: epoch=%d members=%d", r5.Epoch(), r5.NumMembers())
	}
	if r5.Digest() == r4.Digest() {
		t.Fatal("epoch bump must change the digest")
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Consistent hashing's point: adding a node moves only the keys the
	// new node takes over; placements among surviving nodes stay put.
	r := New([]string{"n1", "n2", "n3"}, Config{Seed: 42, Replicas: 2})
	grown := r.WithNode("n4")
	moved := 0
	keys := ringKeys(1000)
	for _, k := range keys {
		before, after := r.Primary(k), grown.Primary(k)
		if before != after {
			moved++
			if after != "n4" {
				t.Fatalf("key %q moved %s→%s, not to the new node", k, before, after)
			}
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("adding 1 of 4 nodes moved %d/%d primaries (want ~1/4, nonzero)", moved, len(keys))
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := New(nodes, Config{Seed: 42, VNodes: 64})
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys; virtual nodes are not balancing (%v)", n, share*100, counts)
		}
	}
}

func TestRingRoleCounts(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := New(nodes, Config{Seed: 42, VNodes: 16, Replicas: 2})
	totalPrim := 0
	for _, n := range nodes {
		p, rep := r.RoleCounts(n)
		if p == 0 || rep == 0 {
			t.Fatalf("node %s: primaries=%d replicas=%d; every member should hold both roles", n, p, rep)
		}
		totalPrim += p
	}
	if want := len(nodes) * 16; totalPrim != want {
		t.Fatalf("total primary ranges %d != total vnodes %d", totalPrim, want)
	}
	if p, rep := r.RoleCounts("absent"); p != 0 || rep != 0 {
		t.Fatalf("non-member has roles: %d/%d", p, rep)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := New(nil, Config{})
	if empty.Primary("k") != "" || empty.ReplicaSet("k") != nil {
		t.Fatal("empty ring must place nothing")
	}
	if d := empty.Digest(); d == "" {
		t.Fatal("empty ring still digests")
	}
}

func TestRingDedupeEmptyAndDuplicateMembers(t *testing.T) {
	// A leading empty member must be dropped, not panic (regression: the
	// dedupe guard once indexed out[-1] when the sorted input began with "").
	r := New([]string{"", "node-a"}, Config{Seed: 1})
	if got := r.Members(); len(got) != 1 || got[0] != "node-a" {
		t.Fatalf("members = %v, want [node-a]", got)
	}
	r2 := New([]string{"node-a", "", "node-a", "node-b", ""}, Config{Seed: 1})
	if got := r2.Members(); len(got) != 2 || got[0] != "node-a" || got[1] != "node-b" {
		t.Fatalf("members = %v, want [node-a node-b]", got)
	}
}
