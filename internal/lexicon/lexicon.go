// Package lexicon implements the sentiment lexicon: the dictionary that
// defines the sentiment polarity of individual words and multi-word terms.
//
// Entries follow the paper's format
//
//	<lexical_entry> <POS> <sent_category>
//
// for example
//
//	"excellent" JJ +
//
// where lexical_entry is a (possibly multi-word) term, POS is the required
// Penn Treebank tag of the entry, and sent_category is + or -.
//
// The paper merged ~3000 manually validated entries from the General
// Inquirer, the Dictionary of Affect in Language and WordNet. Those
// resources are not shipped here; instead the package embeds a hand-curated
// lexicon of the same form (see data.go) and can load additional entries
// from any reader. Deliberate coverage gaps are part of the reproduction:
// the paper's 56% recall stems from sentiment expressions the lexicon and
// pattern database do not cover.
package lexicon

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"webfountain/internal/match"
	"webfountain/internal/pos"
)

// Polarity is a sentiment orientation.
type Polarity int

// Polarity values. Neutral is the zero value.
const (
	Neutral  Polarity = 0
	Positive Polarity = 1
	Negative Polarity = -1
)

// String renders the paper's +/- notation (0 for neutral).
func (p Polarity) String() string {
	switch p {
	case Positive:
		return "+"
	case Negative:
		return "-"
	}
	return "0"
}

// Flip returns the opposite polarity; Neutral flips to Neutral.
func (p Polarity) Flip() Polarity { return -p }

// Entry is one sentiment lexicon entry.
type Entry struct {
	// Term is the lower-cased lexical entry, possibly multi-word.
	Term string
	// POS is the required part-of-speech tag. An empty POS matches any tag.
	POS pos.Tag
	// Pol is the sentiment category.
	Pol Polarity
}

// Lexicon maps (term, POS) to polarity. Multi-word terms are supported via
// LookupPhrase.
//
// A lexicon is not safe for concurrent mutation, but once fully loaded it
// may be shared freely across goroutines: the phrase trie backing
// LookupPhrase is built lazily behind an atomic pointer, and Add
// invalidates it.
type Lexicon struct {
	// entries maps term -> list of (POS, polarity) readings.
	entries map[string][]Entry
	// maxWords is the longest multi-word entry length, for phrase lookup.
	maxWords int

	// trie is the lazily compiled phrase automaton; nil after any Add
	// until the next LookupPhrase rebuilds it.
	trie    atomic.Pointer[phraseTrie]
	buildMu sync.Mutex
}

// phraseTrie is the compiled longest-match automaton over every entry
// term, mapping the matcher's pattern IDs back to entry keys.
type phraseTrie struct {
	m *match.Matcher
	// terms[pattern] is the single-space join of the pattern's words —
	// exactly the key the scan-time probe must use, matching the old
	// ToLower+Join candidate construction.
	terms []string
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{entries: make(map[string][]Entry)}
}

// Default returns a lexicon populated with the embedded entries: the core
// set (data.go) plus the extended General Inquirer / DAL-style long tail
// (data_extended.go).
func Default() *Lexicon {
	lx := New()
	for _, e := range defaultEntries() {
		lx.Add(e)
	}
	for _, e := range extendedEntries() {
		lx.Add(e)
	}
	return lx
}

var shared = sync.OnceValue(func() *Lexicon {
	lx := Default()
	lx.phraseTrie() // compile eagerly so first lookups don't pay for it
	return lx
})

// Shared returns a process-wide lexicon of the embedded entries with its
// phrase automaton pre-compiled. Callers must treat it as read-only;
// anyone needing extra entries builds their own via Default + Add/Load.
func Shared() *Lexicon { return shared() }

// Add inserts an entry. Later entries with the same (term, POS) override
// earlier ones.
func (lx *Lexicon) Add(e Entry) {
	e.Term = strings.ToLower(e.Term)
	words := strings.Count(e.Term, " ") + 1
	if words > lx.maxWords {
		lx.maxWords = words
	}
	lx.trie.Store(nil) // entry set changed; rebuild the trie on next use
	list := lx.entries[e.Term]
	for i, old := range list {
		if old.POS == e.POS {
			list[i] = e
			return
		}
	}
	lx.entries[e.Term] = append(list, e)
}

// Len returns the number of distinct terms in the lexicon.
func (lx *Lexicon) Len() int { return len(lx.entries) }

// MaxWords returns the longest entry length in words.
func (lx *Lexicon) MaxWords() int { return lx.maxWords }

// Lookup returns the polarity of term under the given POS tag. A tag-less
// entry (POS == "") matches any tag; noun-tag entries match all noun tags,
// adjective entries all adjective grades, and verb entries all inflections,
// mirroring how the paper's tagger-agnostic entries behave.
func (lx *Lexicon) Lookup(term string, tag pos.Tag) (Polarity, bool) {
	return lx.lookupLower(strings.ToLower(term), tag)
}

// lookupLower is Lookup for a term that is already lower-cased (entry
// keys and trie terms are), skipping the ToLower scan on the hot path.
func (lx *Lexicon) lookupLower(term string, tag pos.Tag) (Polarity, bool) {
	list, ok := lx.entries[term]
	if !ok {
		return Neutral, false
	}
	var wildcard *Entry
	for i := range list {
		e := &list[i]
		if e.POS == "" {
			wildcard = e
			continue
		}
		if tagsCompatible(e.POS, tag) {
			return e.Pol, true
		}
	}
	if wildcard != nil {
		return wildcard.Pol, true
	}
	return Neutral, false
}

// LookupAny returns the polarity of term under any POS.
func (lx *Lexicon) LookupAny(term string) (Polarity, bool) {
	list, ok := lx.entries[strings.ToLower(term)]
	if !ok || len(list) == 0 {
		return Neutral, false
	}
	return list[0].Pol, true
}

// tagsCompatible reports whether a lexicon POS class covers a concrete tag.
func tagsCompatible(entry, actual pos.Tag) bool {
	if entry == actual {
		return true
	}
	switch entry {
	case pos.JJ:
		// Participles in adjectival positions ("impressed", "polished")
		// count as adjectives for sentiment purposes.
		return actual.IsAdjective() || actual == pos.VBN || actual == pos.VBG
	case pos.NN:
		return actual.IsNoun()
	case pos.VB:
		return actual.IsVerb()
	case pos.RB:
		return actual.IsAdverb()
	}
	return false
}

// comparativeBase maps irregular comparative/superlative forms to their
// base adjective.
var comparativeBase = map[string]string{
	"better": "good", "best": "good",
	"worse": "bad", "worst": "bad",
	"finer": "fine", "finest": "fine",
}

// LookupComparative resolves a comparative or superlative adjective to its
// base form's polarity: "sharper" -> "sharp", "better" -> "good". It
// returns false for words that are not recognizable comparatives of
// lexicon entries.
func (lx *Lexicon) LookupComparative(word string) (Polarity, bool) {
	lw := strings.ToLower(word)
	if base, ok := comparativeBase[lw]; ok {
		return lx.Lookup(base, pos.JJ)
	}
	try := func(base string) (Polarity, bool) {
		if pol, ok := lx.Lookup(base, pos.JJ); ok {
			return pol, true
		}
		return Neutral, false
	}
	for _, suf := range []string{"er", "est"} {
		if !strings.HasSuffix(lw, suf) || len(lw) <= len(suf)+2 {
			continue
		}
		stem := lw[:len(lw)-len(suf)]
		if pol, ok := try(stem); ok { // sharp-er
			return pol, true
		}
		if pol, ok := try(stem + "e"); ok { // nic-er -> nice
			return pol, true
		}
		if strings.HasSuffix(stem, "i") {
			if pol, ok := try(stem[:len(stem)-1] + "y"); ok { // happi-er -> happy
				return pol, true
			}
		}
		if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			if pol, ok := try(stem[:len(stem)-1]); ok { // bigg-er -> big
				return pol, true
			}
		}
	}
	return Neutral, false
}

// phraseTrie returns the compiled phrase automaton, building it on first
// use (and after every Add). Concurrent readers race only on the atomic
// pointer; the build itself is serialized.
func (lx *Lexicon) phraseTrie() *phraseTrie {
	if t := lx.trie.Load(); t != nil {
		return t
	}
	lx.buildMu.Lock()
	defer lx.buildMu.Unlock()
	if t := lx.trie.Load(); t != nil {
		return t
	}
	b := match.NewBuilder()
	t := &phraseTrie{}
	seen := make(map[string]bool, len(lx.entries))
	for term := range lx.entries {
		words := strings.Fields(term)
		if len(words) == 0 {
			continue
		}
		// Probe by the normalized join: entry keys with irregular spacing
		// were unreachable under the old Join(parts, " ") candidates and
		// must stay unreachable.
		norm := strings.Join(words, " ")
		if seen[norm] {
			continue
		}
		seen[norm] = true
		b.Add(words)
		t.terms = append(t.terms, norm)
	}
	t.m = b.Compile()
	lx.trie.Store(t)
	return t
}

// lookupPhraseCands bounds the per-call match stack: one candidate per
// length, so it caps the longest usable entry. Embedded entries top out
// at a few words; anything longer falls back to the allocating scan.
const lookupPhraseCands = 16

// LookupPhrase scans tagged tokens [i, len) for the longest lexicon entry
// starting at i. It returns the polarity, the number of tokens consumed,
// and whether a match was found.
//
// The scan walks the shared phrase automaton, so it allocates nothing:
// candidate terms are resolved to interned entry keys instead of being
// built with ToLower+Join per length per position.
func (lx *Lexicon) LookupPhrase(tokens []pos.TaggedToken, i int) (Polarity, int, bool) {
	if lx.maxWords > lookupPhraseCands {
		return lx.lookupPhraseSlow(tokens, i)
	}
	t := lx.phraseTrie()
	var pats, lens [lookupPhraseCands]int32
	n := 0
	t.m.WalkAt(len(tokens), i,
		func(j int) uint32 { return t.m.Sym(tokens[j].Text) },
		func(pattern, length int) bool {
			pats[n], lens[n] = int32(pattern), int32(length)
			n++
			return true
		})
	for k := n - 1; k >= 0; k-- { // longest first
		term := t.terms[pats[k]]
		l := int(lens[k])
		if pol, ok := lx.lookupLower(term, tokens[i].Tag); ok {
			return pol, l, true
		}
		// Single-reading fallback: when the term exists in the lexicon
		// under exactly one reading, a POS mismatch is almost always the
		// tagger misjudging an unknown word ("grimy" guessed as a noun),
		// not a genuine sense distinction — accept the lone reading.
		if list := lx.entries[term]; len(list) == 1 && tokens[i].Tag != "" {
			return list[0].Pol, l, true
		}
	}
	return Neutral, 0, false
}

// lookupPhraseSlow is the pre-automaton candidate scan, kept as the
// fallback for absurdly long entries and as the reference implementation
// the differential test checks the trie walk against.
func (lx *Lexicon) lookupPhraseSlow(tokens []pos.TaggedToken, i int) (Polarity, int, bool) {
	maxLen := lx.maxWords
	if rem := len(tokens) - i; maxLen > rem {
		maxLen = rem
	}
	for l := maxLen; l >= 1; l-- {
		parts := make([]string, l)
		for k := 0; k < l; k++ {
			parts[k] = strings.ToLower(tokens[i+k].Text)
		}
		term := strings.Join(parts, " ")
		if pol, ok := lx.Lookup(term, tokens[i].Tag); ok {
			return pol, l, true
		}
		if list := lx.entries[term]; len(list) == 1 && tokens[i].Tag != "" {
			return list[0].Pol, l, true
		}
	}
	return Neutral, 0, false
}

// Parse reads entries in the paper's line format:
//
//	"excellent" JJ +
//	"battery drain" NN -
//
// Quotes around the term are optional for single words. Lines starting
// with # and blank lines are skipped.
func Parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("lexicon line %d: %w", lineNo, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lexicon read: %w", err)
	}
	return entries, nil
}

func parseLine(line string) (Entry, error) {
	var term, rest string
	if strings.HasPrefix(line, `"`) {
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return Entry{}, fmt.Errorf("unterminated quote in %q", line)
		}
		term = line[1 : 1+end]
		rest = strings.TrimSpace(line[2+end:])
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return Entry{}, fmt.Errorf("malformed entry %q", line)
		}
		term, rest = fields[0], strings.TrimSpace(fields[1])
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return Entry{}, fmt.Errorf("want POS and polarity after term in %q", line)
	}
	var pol Polarity
	switch fields[1] {
	case "+":
		pol = Positive
	case "-":
		pol = Negative
	default:
		return Entry{}, fmt.Errorf("bad polarity %q (want + or -)", fields[1])
	}
	return Entry{Term: strings.ToLower(term), POS: pos.Tag(fields[0]), Pol: pol}, nil
}

// Load parses entries from r and adds them to the lexicon.
func (lx *Lexicon) Load(r io.Reader) error {
	entries, err := Parse(r)
	if err != nil {
		return err
	}
	for _, e := range entries {
		lx.Add(e)
	}
	return nil
}
