// Package lexicon implements the sentiment lexicon: the dictionary that
// defines the sentiment polarity of individual words and multi-word terms.
//
// Entries follow the paper's format
//
//	<lexical_entry> <POS> <sent_category>
//
// for example
//
//	"excellent" JJ +
//
// where lexical_entry is a (possibly multi-word) term, POS is the required
// Penn Treebank tag of the entry, and sent_category is + or -.
//
// The paper merged ~3000 manually validated entries from the General
// Inquirer, the Dictionary of Affect in Language and WordNet. Those
// resources are not shipped here; instead the package embeds a hand-curated
// lexicon of the same form (see data.go) and can load additional entries
// from any reader. Deliberate coverage gaps are part of the reproduction:
// the paper's 56% recall stems from sentiment expressions the lexicon and
// pattern database do not cover.
package lexicon

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"webfountain/internal/pos"
)

// Polarity is a sentiment orientation.
type Polarity int

// Polarity values. Neutral is the zero value.
const (
	Neutral  Polarity = 0
	Positive Polarity = 1
	Negative Polarity = -1
)

// String renders the paper's +/- notation (0 for neutral).
func (p Polarity) String() string {
	switch p {
	case Positive:
		return "+"
	case Negative:
		return "-"
	}
	return "0"
}

// Flip returns the opposite polarity; Neutral flips to Neutral.
func (p Polarity) Flip() Polarity { return -p }

// Entry is one sentiment lexicon entry.
type Entry struct {
	// Term is the lower-cased lexical entry, possibly multi-word.
	Term string
	// POS is the required part-of-speech tag. An empty POS matches any tag.
	POS pos.Tag
	// Pol is the sentiment category.
	Pol Polarity
}

// Lexicon maps (term, POS) to polarity. Multi-word terms are supported via
// LookupPhrase.
type Lexicon struct {
	// entries maps term -> list of (POS, polarity) readings.
	entries map[string][]Entry
	// maxWords is the longest multi-word entry length, for phrase lookup.
	maxWords int
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{entries: make(map[string][]Entry)}
}

// Default returns a lexicon populated with the embedded entries: the core
// set (data.go) plus the extended General Inquirer / DAL-style long tail
// (data_extended.go).
func Default() *Lexicon {
	lx := New()
	for _, e := range defaultEntries() {
		lx.Add(e)
	}
	for _, e := range extendedEntries() {
		lx.Add(e)
	}
	return lx
}

// Add inserts an entry. Later entries with the same (term, POS) override
// earlier ones.
func (lx *Lexicon) Add(e Entry) {
	e.Term = strings.ToLower(e.Term)
	words := strings.Count(e.Term, " ") + 1
	if words > lx.maxWords {
		lx.maxWords = words
	}
	list := lx.entries[e.Term]
	for i, old := range list {
		if old.POS == e.POS {
			list[i] = e
			return
		}
	}
	lx.entries[e.Term] = append(list, e)
}

// Len returns the number of distinct terms in the lexicon.
func (lx *Lexicon) Len() int { return len(lx.entries) }

// MaxWords returns the longest entry length in words.
func (lx *Lexicon) MaxWords() int { return lx.maxWords }

// Lookup returns the polarity of term under the given POS tag. A tag-less
// entry (POS == "") matches any tag; noun-tag entries match all noun tags,
// adjective entries all adjective grades, and verb entries all inflections,
// mirroring how the paper's tagger-agnostic entries behave.
func (lx *Lexicon) Lookup(term string, tag pos.Tag) (Polarity, bool) {
	list, ok := lx.entries[strings.ToLower(term)]
	if !ok {
		return Neutral, false
	}
	var wildcard *Entry
	for i := range list {
		e := &list[i]
		if e.POS == "" {
			wildcard = e
			continue
		}
		if tagsCompatible(e.POS, tag) {
			return e.Pol, true
		}
	}
	if wildcard != nil {
		return wildcard.Pol, true
	}
	return Neutral, false
}

// LookupAny returns the polarity of term under any POS.
func (lx *Lexicon) LookupAny(term string) (Polarity, bool) {
	list, ok := lx.entries[strings.ToLower(term)]
	if !ok || len(list) == 0 {
		return Neutral, false
	}
	return list[0].Pol, true
}

// tagsCompatible reports whether a lexicon POS class covers a concrete tag.
func tagsCompatible(entry, actual pos.Tag) bool {
	if entry == actual {
		return true
	}
	switch entry {
	case pos.JJ:
		// Participles in adjectival positions ("impressed", "polished")
		// count as adjectives for sentiment purposes.
		return actual.IsAdjective() || actual == pos.VBN || actual == pos.VBG
	case pos.NN:
		return actual.IsNoun()
	case pos.VB:
		return actual.IsVerb()
	case pos.RB:
		return actual.IsAdverb()
	}
	return false
}

// comparativeBase maps irregular comparative/superlative forms to their
// base adjective.
var comparativeBase = map[string]string{
	"better": "good", "best": "good",
	"worse": "bad", "worst": "bad",
	"finer": "fine", "finest": "fine",
}

// LookupComparative resolves a comparative or superlative adjective to its
// base form's polarity: "sharper" -> "sharp", "better" -> "good". It
// returns false for words that are not recognizable comparatives of
// lexicon entries.
func (lx *Lexicon) LookupComparative(word string) (Polarity, bool) {
	lw := strings.ToLower(word)
	if base, ok := comparativeBase[lw]; ok {
		return lx.Lookup(base, pos.JJ)
	}
	try := func(base string) (Polarity, bool) {
		if pol, ok := lx.Lookup(base, pos.JJ); ok {
			return pol, true
		}
		return Neutral, false
	}
	for _, suf := range []string{"er", "est"} {
		if !strings.HasSuffix(lw, suf) || len(lw) <= len(suf)+2 {
			continue
		}
		stem := lw[:len(lw)-len(suf)]
		if pol, ok := try(stem); ok { // sharp-er
			return pol, true
		}
		if pol, ok := try(stem + "e"); ok { // nic-er -> nice
			return pol, true
		}
		if strings.HasSuffix(stem, "i") {
			if pol, ok := try(stem[:len(stem)-1] + "y"); ok { // happi-er -> happy
				return pol, true
			}
		}
		if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			if pol, ok := try(stem[:len(stem)-1]); ok { // bigg-er -> big
				return pol, true
			}
		}
	}
	return Neutral, false
}

// LookupPhrase scans tagged tokens [i, len) for the longest lexicon entry
// starting at i. It returns the polarity, the number of tokens consumed,
// and whether a match was found.
func (lx *Lexicon) LookupPhrase(tokens []pos.TaggedToken, i int) (Polarity, int, bool) {
	maxLen := lx.maxWords
	if rem := len(tokens) - i; maxLen > rem {
		maxLen = rem
	}
	for l := maxLen; l >= 1; l-- {
		parts := make([]string, l)
		for k := 0; k < l; k++ {
			parts[k] = strings.ToLower(tokens[i+k].Text)
		}
		term := strings.Join(parts, " ")
		if pol, ok := lx.Lookup(term, tokens[i].Tag); ok {
			return pol, l, true
		}
		// Single-reading fallback: when the term exists in the lexicon
		// under exactly one reading, a POS mismatch is almost always the
		// tagger misjudging an unknown word ("grimy" guessed as a noun),
		// not a genuine sense distinction — accept the lone reading.
		if list := lx.entries[term]; len(list) == 1 && tokens[i].Tag != "" {
			return list[0].Pol, l, true
		}
	}
	return Neutral, 0, false
}

// Parse reads entries in the paper's line format:
//
//	"excellent" JJ +
//	"battery drain" NN -
//
// Quotes around the term are optional for single words. Lines starting
// with # and blank lines are skipped.
func Parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("lexicon line %d: %w", lineNo, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lexicon read: %w", err)
	}
	return entries, nil
}

func parseLine(line string) (Entry, error) {
	var term, rest string
	if strings.HasPrefix(line, `"`) {
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return Entry{}, fmt.Errorf("unterminated quote in %q", line)
		}
		term = line[1 : 1+end]
		rest = strings.TrimSpace(line[2+end:])
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return Entry{}, fmt.Errorf("malformed entry %q", line)
		}
		term, rest = fields[0], strings.TrimSpace(fields[1])
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return Entry{}, fmt.Errorf("want POS and polarity after term in %q", line)
	}
	var pol Polarity
	switch fields[1] {
	case "+":
		pol = Positive
	case "-":
		pol = Negative
	default:
		return Entry{}, fmt.Errorf("bad polarity %q (want + or -)", fields[1])
	}
	return Entry{Term: strings.ToLower(term), POS: pos.Tag(fields[0]), Pol: pol}, nil
}

// Load parses entries from r and adds them to the lexicon.
func (lx *Lexicon) Load(r io.Reader) error {
	entries, err := Parse(r)
	if err != nil {
		return err
	}
	for _, e := range entries {
		lx.Add(e)
	}
	return nil
}
