package lexicon

import "webfountain/internal/pos"

// defaultEntries returns the embedded sentiment lexicon. It stands in for
// the paper's ~3000 manually validated entries merged from the General
// Inquirer, the Dictionary of Affect in Language and WordNet. Like the
// paper's lexicon it is dominated by adjectives, with a smaller set of
// nouns, verbs and adverbs. Coverage is intentionally not exhaustive —
// idiomatic and figurative sentiment ("a real gem", "falls flat") is
// absent, which is what bounds the sentiment miner's recall.
func defaultEntries() []Entry {
	mk := func(pol Polarity, tag pos.Tag, words ...string) []Entry {
		out := make([]Entry, len(words))
		for i, w := range words {
			out[i] = Entry{Term: w, POS: tag, Pol: pol}
		}
		return out
	}
	var all []Entry
	add := func(es []Entry) { all = append(all, es...) }

	// --- positive adjectives ---
	add(mk(Positive, pos.JJ,
		"excellent", "good", "great", "amazing", "awesome", "wonderful",
		"fantastic", "superb", "outstanding", "impressive", "remarkable",
		"brilliant", "stunning", "gorgeous", "beautiful", "crisp", "sharp",
		"vivid", "vibrant", "flawless", "perfect", "solid", "sturdy",
		"reliable", "responsive", "fast", "quick", "smooth", "intuitive",
		"comfortable", "compact", "lightweight", "durable", "versatile",
		"powerful", "accurate", "superior", "exceptional", "delightful",
		"pleasant", "satisfying", "functional", "useful", "handy",
		"affordable", "reasonable", "generous", "rich", "warm", "clean",
		"clear", "bright", "quiet", "catchy", "soulful", "haunting",
		"energetic", "lively", "upbeat", "memorable", "masterful",
		"polished", "melodic", "lyrical", "effective", "safe",
		"profitable", "robust", "steady", "stable", "strong", "welcome",
		"happy", "glad", "pleased", "satisfied", "thrilled", "delighted",
		"ecstatic", "fabulous", "marvelous", "terrific", "splendid",
		"magnificent", "phenomenal", "extraordinary", "admirable",
		"praiseworthy", "commendable", "favorable", "positive", "promising",
		"encouraging", "healthy", "beneficial", "valuable", "worthwhile",
		"enjoyable", "fun", "engaging", "charming", "elegant", "graceful",
		"stylish", "sleek", "premium", "top-notch", "first-rate",
		"well-built", "well-designed", "well-made", "user-friendly",
		"seamless", "effortless", "snappy", "speedy", "nimble", "agile",
		"precise", "consistent", "dependable", "trustworthy", "honest",
		"innovative", "creative", "original", "fresh", "modern",
		"convenient", "practical", "efficient", "economical", "ergonomic",
		"roomy", "spacious", "generous", "ample", "plentiful", "abundant",
		"impeccable", "immaculate", "pristine", "luminous", "radiant",
		"smart", "clever", "intelligent", "capable", "competent",
		"skillful", "talented", "gifted", "inspired", "inspiring",
		"uplifting", "moving", "touching", "stirring", "captivating",
		"mesmerizing", "enchanting", "riveting", "gripping", "compelling",
		"rewarding", "gratifying", "refreshing", "invigorating", "soothing",
		"relaxing", "calming", "crystal-clear", "impressed", "amazed", "natural", "authentic",
		"faithful", "true", "balanced", "harmonious", "cohesive", "tight",
		"punchy", "dynamic", "expressive", "nuanced", "sophisticated",
		"mature", "confident", "assured", "bold", "daring", "adventurous",
	))

	// --- negative adjectives ---
	add(mk(Negative, pos.JJ,
		"bad", "poor", "terrible", "horrible", "awful", "disappointing",
		"mediocre", "sluggish", "slow", "weak", "flimsy", "cheap",
		"noisy", "grainy", "blurry", "dim", "dull", "muddy", "harsh",
		"clunky", "bulky", "heavy", "awkward", "confusing", "frustrating",
		"annoying", "unreliable", "defective", "faulty", "useless",
		"worthless", "inadequate", "inferior", "unacceptable", "dreadful",
		"abysmal", "lousy", "shoddy", "subpar", "overpriced", "expensive",
		"costly", "pricey", "bland", "forgettable", "repetitive",
		"monotonous", "uninspired", "derivative", "generic", "ineffective",
		"unsafe", "harmful", "dangerous", "hazardous", "risky", "toxic",
		"unprofitable", "volatile", "unstable", "sad", "angry", "upset",
		"unhappy", "dissatisfied", "displeased", "disgusted", "appalled",
		"horrified", "furious", "disappointed", "frustrated", "irritated",
		"aggravated", "annoyed", "miserable", "pathetic", "pitiful",
		"atrocious", "deplorable", "disastrous", "catastrophic", "dismal",
		"grim", "bleak", "negative", "unfavorable", "discouraging",
		"troubling", "worrying", "alarming", "disturbing", "distressing",
		"unpleasant", "disagreeable", "objectionable", "offensive",
		"obnoxious", "intolerable", "unbearable", "insufferable",
		"problematic", "flawed", "broken", "buggy", "glitchy", "erratic",
		"inconsistent", "unpredictable", "undependable", "untrustworthy",
		"deceptive", "misleading", "dishonest", "fraudulent", "shady",
		"sloppy", "careless", "negligent", "reckless", "irresponsible",
		"incompetent", "inept", "clumsy", "crude", "primitive", "outdated",
		"obsolete", "stale", "tired", "boring", "tedious", "dreary",
		"lifeless", "soulless", "hollow", "shallow", "thin", "weak-sounding",
		"tinny", "muffled", "distorted", "garbled", "scratchy", "shrill",
		"grating", "jarring", "dissonant", "off-key", "out-of-tune",
		"uncomfortable", "cramped", "stiff", "rigid", "brittle", "fragile",
		"cheap-feeling", "plasticky", "ugly", "hideous", "unsightly",
		"washed-out", "faded", "overexposed", "underexposed", "soft",
		"fuzzy", "pixelated", "jagged", "choppy", "laggy", "unresponsive",
		"painful", "agonizing", "excruciating", "nightmarish", "hellish",
		"regrettable", "lamentable", "unfortunate", "woeful", "sorry",
		"second-rate", "third-rate", "low-quality", "low-grade", "bottom",
		"excessive", "bloated", "wasteful", "inefficient", "impractical",
		"cumbersome", "unwieldy", "convoluted", "complicated", "cryptic",
		"counterintuitive", "baffling", "bewildering", "incomprehensible",
		"contaminated", "polluted", "dirty", "filthy", "grimy", "corrosive",
		"sick", "ill", "nauseous", "dizzy", "lethargic", "fatigued",
	))

	// --- positive nouns ---
	add(mk(Positive, pos.NN,
		"masterpiece", "gem", "delight", "pleasure", "joy", "triumph",
		"success", "winner", "bargain", "steal", "treat", "marvel",
		"wonder", "beauty", "excellence", "perfection", "brilliance",
		"strength", "advantage", "benefit", "improvement",
		"breakthrough", "innovation", "progress", "achievement",
		"satisfaction", "praise", "acclaim", "applause", "admiration",
		"confidence", "trust", "reliability", "durability", "clarity",
		"precision", "comfort", "convenience", "elegance", "charm",
		"grace", "polish", "finesse", "craftsmanship", "virtuosity",
		"gain", "profit", "growth", "recovery", "upturn", "boom",
		"remedy", "cure", "relief", "healing", "wellness",
	))

	// --- negative nouns ---
	add(mk(Negative, pos.NN,
		"disaster", "catastrophe", "failure", "flop", "dud", "mess",
		"nightmare", "disappointment", "letdown", "ripoff", "junk",
		"garbage", "trash", "waste", "problem", "issue", "flaw",
		"defect", "fault", "weakness", "shortcoming", "drawback",
		"disadvantage", "downside", "deficiency", "lack", "shortage",
		"complaint", "grievance", "frustration", "annoyance", "nuisance",
		"hassle", "headache", "trouble", "difficulty", "struggle",
		"breakdown", "malfunction", "glitch", "bug", "error", "mistake",
		"blunder", "fiasco", "debacle", "scandal", "controversy",
		"crisis", "emergency", "danger", "hazard", "risk", "threat",
		"damage", "harm", "injury", "loss", "decline", "downturn",
		"slump", "crash", "collapse", "recession", "deficit",
		"contamination", "pollution", "spill", "leak", "accident",
		"violation", "penalty", "fine", "lawsuit", "recall",
		"side-effect", "overdose", "addiction", "relapse", "infection",
		"noise", "distortion", "lag", "delay", "crack", "scratch",
		"dent", "wear", "corrosion", "rust",
	))

	// --- positive verbs (self-polar predicates) ---
	add(mk(Positive, pos.VB,
		"love", "enjoy", "adore", "admire", "appreciate", "praise",
		"recommend", "applaud", "celebrate", "impress", "delight",
		"please", "satisfy", "excel", "shine", "thrive", "flourish",
		"improve", "enhance", "boost", "strengthen", "succeed",
		"outperform", "surpass", "exceed", "win", "triumph", "reward",
		"benefit", "help", "heal", "cure", "comfort", "reassure",
	))

	// --- negative verbs ---
	add(mk(Negative, pos.VB,
		"hate", "dislike", "despise", "loathe", "detest", "regret",
		"disappoint", "frustrate", "annoy", "irritate", "aggravate",
		"anger", "upset", "disgust", "appall", "horrify", "fail",
		"struggle", "suffer", "lack", "break", "crash", "freeze",
		"malfunction", "deteriorate", "degrade", "worsen", "decline",
		"criticize", "condemn", "denounce", "blame", "complain",
		"damage", "harm", "hurt", "ruin", "destroy", "waste",
		"pollute", "contaminate", "leak", "spill", "violate",
		"overheat", "jam", "rattle", "scratch", "blur", "stall",
	))

	// --- positive adverbs ---
	add(mk(Positive, pos.RB,
		"flawlessly", "beautifully", "superbly", "brilliantly",
		"wonderfully", "excellently", "admirably", "gracefully",
		"smoothly", "reliably", "consistently", "effortlessly",
		"perfectly", "impressively", "remarkably well",
	))

	// --- negative adverbs ---
	add(mk(Negative, pos.RB,
		"poorly", "badly", "terribly", "horribly", "awfully",
		"miserably", "dismally", "sloppily", "erratically",
		"unreliably", "painfully", "frustratingly", "annoyingly",
	))

	// --- multi-word terms ---
	add([]Entry{
		{Term: "high quality", POS: pos.JJ, Pol: Positive},
		{Term: "top quality", POS: pos.JJ, Pol: Positive},
		{Term: "poor quality", POS: pos.JJ, Pol: Negative},
		{Term: "low quality", POS: pos.JJ, Pol: Negative},
		{Term: "state of the art", POS: pos.JJ, Pol: Positive},
		{Term: "state-of-the-art", POS: pos.JJ, Pol: Positive},
		{Term: "top notch", POS: pos.JJ, Pol: Positive},
		{Term: "second to none", POS: pos.JJ, Pol: Positive},
		{Term: "best in class", POS: pos.JJ, Pol: Positive},
		{Term: "worth every penny", POS: pos.JJ, Pol: Positive},
		{Term: "highly recommended", POS: pos.JJ, Pol: Positive},
		{Term: "piece of junk", POS: pos.NN, Pol: Negative},
		{Term: "waste of money", POS: pos.NN, Pol: Negative},
		{Term: "pain in the neck", POS: pos.NN, Pol: Negative},
		{Term: "deal breaker", POS: pos.NN, Pol: Negative},
		{Term: "short battery life", POS: pos.NN, Pol: Negative},
		{Term: "long battery life", POS: pos.NN, Pol: Positive},
	})

	return all
}
