package lexicon

import (
	"math/rand"
	"strings"
	"testing"

	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

// vocabWords collects every distinct word of every entry so the random
// token streams actually exercise multi-word and prefix collisions.
func vocabWords(lx *Lexicon) []string {
	seen := map[string]bool{}
	var words []string
	for term := range lx.entries {
		for _, w := range strings.Fields(term) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	return words
}

// TestLookupPhraseMatchesSlowPath drives the trie walk and the original
// ToLower+Join candidate scan over random token streams drawn from the
// lexicon's own vocabulary (plus noise) and requires identical results at
// every position.
func TestLookupPhraseMatchesSlowPath(t *testing.T) {
	lx := Default()
	words := vocabWords(lx)
	noise := []string{"the", "a", "zzz", "Frobnicate", ",", ".", "it"}
	tags := []pos.Tag{pos.NN, pos.NNS, pos.JJ, pos.JJR, pos.VB, pos.VBN, pos.RB, pos.DT, ""}

	for _, seed := range []int64{1, 42, 20050405} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(12)
			toks := make([]pos.TaggedToken, n)
			for i := range toks {
				var w string
				if rng.Intn(4) == 0 {
					w = noise[rng.Intn(len(noise))]
				} else {
					w = words[rng.Intn(len(words))]
				}
				if rng.Intn(3) == 0 {
					w = strings.ToUpper(w) // exercise case folding
				}
				toks[i] = pos.TaggedToken{Token: tokenize.Token{Text: w}, Tag: tags[rng.Intn(len(tags))]}
			}
			for i := 0; i < n; i++ {
				gp, gl, gok := lx.LookupPhrase(toks, i)
				wp, wl, wok := lx.lookupPhraseSlow(toks, i)
				if gp != wp || gl != wl || gok != wok {
					t.Fatalf("seed %d trial %d pos %d (%v): trie (%v,%d,%v) != slow (%v,%d,%v)",
						seed, trial, i, toks, gp, gl, gok, wp, wl, wok)
				}
			}
		}
	}
}

// TestLookupPhraseTrieInvalidation proves Add after a lookup rebuilds the
// automaton so new multi-word entries are found.
func TestLookupPhraseTrieInvalidation(t *testing.T) {
	lx := New()
	lx.Add(Entry{Term: "battery", POS: pos.NN, Pol: Negative})
	toks := []pos.TaggedToken{
		{Token: tokenize.Token{Text: "battery"}, Tag: pos.NN},
		{Token: tokenize.Token{Text: "drain"}, Tag: pos.NN},
	}
	if pol, l, ok := lx.LookupPhrase(toks, 0); !ok || l != 1 || pol != Negative {
		t.Fatalf("before Add: got (%v,%d,%v)", pol, l, ok)
	}
	lx.Add(Entry{Term: "battery drain", POS: pos.NN, Pol: Positive})
	if pol, l, ok := lx.LookupPhrase(toks, 0); !ok || l != 2 || pol != Positive {
		t.Fatalf("after Add: got (%v,%d,%v), want longest-first 2-word match", pol, l, ok)
	}
}

// TestLookupPhraseAllocs pins the zero-allocation contract of the trie
// walk for both hit and miss positions.
func TestLookupPhraseAllocs(t *testing.T) {
	lx := Shared()
	toks := []pos.TaggedToken{
		{Token: tokenize.Token{Text: "The"}, Tag: pos.DT},
		{Token: tokenize.Token{Text: "Battery"}, Tag: pos.NN},
		{Token: tokenize.Token{Text: "life"}, Tag: pos.NN},
		{Token: tokenize.Token{Text: "is"}, Tag: pos.VBZ},
		{Token: tokenize.Token{Text: "excellent"}, Tag: pos.JJ},
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range toks {
			lx.LookupPhrase(toks, i)
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupPhrase allocates %v per scan, want 0", allocs)
	}
}
