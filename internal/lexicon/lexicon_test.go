package lexicon

import (
	"strings"
	"testing"
	"testing/quick"

	"webfountain/internal/pos"
	"webfountain/internal/tokenize"
)

func TestDefaultLexiconNonTrivial(t *testing.T) {
	lx := Default()
	if lx.Len() < 500 {
		t.Errorf("default lexicon has %d terms, want >= 500", lx.Len())
	}
	if lx.MaxWords() < 3 {
		t.Errorf("expected multi-word entries, MaxWords = %d", lx.MaxWords())
	}
}

func TestLookupBasic(t *testing.T) {
	lx := Default()
	cases := []struct {
		term string
		tag  pos.Tag
		want Polarity
	}{
		{"excellent", pos.JJ, Positive},
		{"Excellent", pos.JJ, Positive}, // case-insensitive
		{"mediocre", pos.JJ, Negative},
		{"masterpiece", pos.NN, Positive},
		{"disaster", pos.NN, Negative},
		{"love", pos.VB, Positive},
		{"hate", pos.VB, Negative},
		{"flawlessly", pos.RB, Positive},
		{"poorly", pos.RB, Negative},
	}
	for _, c := range cases {
		got, ok := lx.Lookup(c.term, c.tag)
		if !ok || got != c.want {
			t.Errorf("Lookup(%q, %s) = %v, %v; want %v", c.term, c.tag, got, ok, c.want)
		}
	}
}

func TestLookupTagClassCompatibility(t *testing.T) {
	lx := Default()
	// JJ entry must match JJR/JJS; VB entry must match VBZ/VBD etc.
	if pol, ok := lx.Lookup("good", pos.JJR); !ok || pol != Positive {
		t.Error("JJ entry should cover JJR")
	}
	if pol, ok := lx.Lookup("love", pos.VBZ); !ok || pol != Positive {
		t.Error("VB entry should cover VBZ")
	}
	if pol, ok := lx.Lookup("disaster", pos.NNS); !ok || pol != Negative {
		t.Error("NN entry should cover NNS")
	}
	// Wrong class should not match: "love" as a noun is not listed.
	if _, ok := lx.Lookup("excellent", pos.NN); ok {
		t.Error("JJ-only entry matched NN")
	}
}

func TestLookupMiss(t *testing.T) {
	lx := Default()
	if _, ok := lx.Lookup("camera", pos.NN); ok {
		t.Error("neutral word found in sentiment lexicon")
	}
	if pol, ok := lx.LookupAny("zorblefritz"); ok || pol != Neutral {
		t.Error("unknown word should miss")
	}
}

func TestLookupPhraseMultiWord(t *testing.T) {
	lx := Default()
	tk := tokenize.New()
	tg := pos.NewTagger()
	tokens := tg.Tag(tk.Tokenize("this is a waste of money overall"))
	// find index of "waste"
	idx := -1
	for i, tok := range tokens {
		if tok.Text == "waste" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("waste not found")
	}
	pol, n, ok := lx.LookupPhrase(tokens, idx)
	if !ok || pol != Negative || n != 3 {
		t.Errorf("LookupPhrase(waste of money) = %v, %d, %v", pol, n, ok)
	}
}

func TestLookupPhraseSingleFallback(t *testing.T) {
	lx := Default()
	tk := tokenize.New()
	tg := pos.NewTagger()
	tokens := tg.Tag(tk.Tokenize("an excellent camera"))
	pol, n, ok := lx.LookupPhrase(tokens, 1)
	if !ok || pol != Positive || n != 1 {
		t.Errorf("LookupPhrase(excellent) = %v, %d, %v", pol, n, ok)
	}
}

func TestPolarityStringAndFlip(t *testing.T) {
	if Positive.String() != "+" || Negative.String() != "-" || Neutral.String() != "0" {
		t.Error("Polarity.String wrong")
	}
	if Positive.Flip() != Negative || Negative.Flip() != Positive || Neutral.Flip() != Neutral {
		t.Error("Flip wrong")
	}
}

func TestParseLineFormats(t *testing.T) {
	input := `
# comment line
"excellent" JJ +
"battery drain" NN -
lousy JJ -
`
	entries, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if entries[1].Term != "battery drain" || entries[1].Pol != Negative || entries[1].POS != pos.NN {
		t.Errorf("entry[1] = %+v", entries[1])
	}
	if entries[2].Term != "lousy" {
		t.Errorf("entry[2] = %+v", entries[2])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		`"unterminated JJ +`,
		`excellent JJ`,
		`excellent JJ ?`,
		`loneword`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestLoadIntoLexicon(t *testing.T) {
	lx := New()
	err := lx.Load(strings.NewReader(`"splendiferous" JJ +`))
	if err != nil {
		t.Fatal(err)
	}
	if pol, ok := lx.Lookup("splendiferous", pos.JJ); !ok || pol != Positive {
		t.Error("loaded entry not found")
	}
}

func TestAddOverride(t *testing.T) {
	lx := New()
	lx.Add(Entry{Term: "sick", POS: pos.JJ, Pol: Negative})
	lx.Add(Entry{Term: "sick", POS: pos.JJ, Pol: Positive}) // slang flip
	if pol, _ := lx.Lookup("sick", pos.JJ); pol != Positive {
		t.Error("override did not take effect")
	}
	if lx.Len() != 1 {
		t.Errorf("Len = %d, want 1", lx.Len())
	}
}

func TestNoContradictoryDefaultEntries(t *testing.T) {
	seen := map[string]Polarity{}
	for _, e := range defaultEntries() {
		key := e.Term + "/" + string(e.POS)
		if prev, ok := seen[key]; ok && prev != e.Pol {
			t.Errorf("contradictory entries for %s", key)
		}
		seen[key] = e.Pol
	}
}

// Property: Lookup is total and consistent with LookupAny for single-
// reading terms.
func TestQuickLookupConsistent(t *testing.T) {
	lx := Default()
	entries := defaultEntries()
	f := func(idx uint16) bool {
		e := entries[int(idx)%len(entries)]
		pol, ok := lx.Lookup(e.Term, e.POS)
		return ok && pol == e.Pol || hasOverride(entries, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func hasOverride(entries []Entry, e Entry) bool {
	n := 0
	for _, x := range entries {
		if x.Term == e.Term && x.POS == e.POS {
			n++
		}
	}
	return n > 1
}

func TestLookupComparative(t *testing.T) {
	lx := Default()
	cases := map[string]Polarity{
		"better":   Positive,
		"best":     Positive,
		"worse":    Negative,
		"worst":    Negative,
		"sharper":  Positive,
		"sharpest": Positive,
		"noisier":  Negative,
		"brighter": Positive,
		"bigger":   Neutral, // "big" is not a sentiment word
	}
	for w, want := range cases {
		got, ok := lx.LookupComparative(w)
		if want == Neutral {
			if ok {
				t.Errorf("LookupComparative(%q) = %v, want miss", w, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("LookupComparative(%q) = %v, %v; want %v", w, got, ok, want)
		}
	}
	if _, ok := lx.LookupComparative("zoom"); ok {
		t.Error("non-comparative should miss")
	}
}
