package codec

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	type doc struct {
		id  uint64
		pos []int
	}
	cases := [][]doc{
		nil, // empty blob
		{{id: 0, pos: nil}},
		{{id: 7, pos: []int{0}}},
		{{id: 3, pos: []int{1, 2, 9}}, {id: 3, pos: nil}, {id: 12, pos: []int{500}}},
		{{id: 0, pos: []int{0, 1, 2, 3}}, {id: 1 << 40, pos: []int{1 << 30}}},
	}
	for ci, docs := range cases {
		var blob []byte
		prev := uint64(0)
		for _, d := range docs {
			blob = AppendBlock(blob, d.id-prev, d.pos)
			prev = d.id
		}
		r := NewReader(blob)
		var got []doc
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, doc{id: b.Doc, pos: b.AppendPositions(nil)})
		}
		if len(got) != len(docs) {
			t.Fatalf("case %d: %d blocks decoded, want %d", ci, len(got), len(docs))
		}
		for i := range docs {
			if got[i].id != docs[i].id || !equalPos(got[i].pos, docs[i].pos) {
				t.Fatalf("case %d block %d: got %+v want %+v", ci, i, got[i], docs[i])
			}
		}
	}
}

func equalPos(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestContains(t *testing.T) {
	blob := AppendBlock(nil, 5, []int{2, 7, 8, 40})
	r := NewReader(blob)
	b, ok := r.Next()
	if !ok || b.Doc != 5 {
		t.Fatalf("decode failed: %+v %v", b, ok)
	}
	for _, p := range []int{2, 7, 8, 40} {
		if !b.Contains(p) {
			t.Fatalf("Contains(%d) = false", p)
		}
	}
	for _, p := range []int{0, 1, 3, 9, 39, 41, 1000} {
		if b.Contains(p) {
			t.Fatalf("Contains(%d) = true", p)
		}
	}
}

func TestTruncatedInput(t *testing.T) {
	blob := AppendBlock(nil, 1, []int{3, 5, 1000000})
	blob = AppendBlock(blob, 9, []int{64})
	for cut := 0; cut <= len(blob); cut++ {
		r := NewReader(blob[:cut])
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			b.AppendPositions(nil) // must never read out of bounds
		}
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		nblocks := rng.Intn(20)
		var blob []byte
		type blk struct {
			doc uint64
			pos []int
		}
		var want []blk
		doc := uint64(0)
		for i := 0; i < nblocks; i++ {
			gap := uint64(rng.Intn(1000))
			if i == 0 || rng.Intn(8) > 0 {
				gap++
			} else {
				gap = 0 // repeated concept add
			}
			doc += gap
			npos := rng.Intn(6)
			pos := make([]int, 0, npos)
			p := -1
			for j := 0; j < npos; j++ {
				p += 1 + rng.Intn(50)
				pos = append(pos, p)
			}
			blob = AppendBlock(blob, gap, pos)
			want = append(want, blk{doc, pos})
		}
		r := NewReader(blob)
		for i := 0; ; i++ {
			b, ok := r.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("trial %d: decoded %d blocks, want %d", trial, i, len(want))
				}
				break
			}
			if b.Doc != want[i].doc || !equalPos(b.AppendPositions(nil), want[i].pos) {
				t.Fatalf("trial %d block %d mismatch", trial, i)
			}
		}
	}
}
