// Package codec implements the delta-varint posting-list encoding of the
// inverted index.
//
// A posting list is a flat byte blob of document blocks appended in
// docID order:
//
//	block := uvarint(docGap) uvarint(count) uvarint(posDelta)*count
//
// docGap is the distance from the previous block's document number (the
// first block's gap is the document number itself; repeated concept adds
// for one document produce zero gaps). Position deltas are likewise
// gaps between consecutive token positions, with the first delta being
// the position itself. Both sequences are non-decreasing by
// construction, so every value fits a small unsigned varint — for
// review-sized documents a position costs ~1 byte against the 8 bytes of
// the previous []int representation, and a document block costs ~2 bytes
// of header against 40 bytes of posting-struct headers.
//
// Readers tolerate arbitrary input: a truncated or corrupt blob ends the
// iteration (Reader.Next returns ok == false) instead of panicking, and
// a Block handed out by Next is always fully delimited, so its position
// accessors never read out of bounds.
package codec

import "encoding/binary"

// AppendBlock appends one document block to dst and returns the extended
// blob. docGap is the document-number distance from the previous block
// (or the document number itself for the first block); positions are the
// strictly increasing token positions of the term in that document, and
// may be empty (concept postings carry no positions).
func AppendBlock(dst []byte, docGap uint64, positions []int) []byte {
	dst = binary.AppendUvarint(dst, docGap)
	dst = binary.AppendUvarint(dst, uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		dst = binary.AppendUvarint(dst, uint64(p-prev))
		prev = p
	}
	return dst
}

// Block is one decoded document block: the document number and a
// delimited view of its encoded position deltas.
type Block struct {
	// Doc is the absolute document number (gaps already summed).
	Doc uint64
	// Count is the number of positions in the block.
	Count int
	// deltas holds exactly Count varints, validated by Reader.Next.
	deltas []byte
}

// AppendPositions decodes the block's positions into dst.
func (b Block) AppendPositions(dst []int) []int {
	off, pos := 0, uint64(0)
	for i := 0; i < b.Count; i++ {
		d, n := binary.Uvarint(b.deltas[off:])
		off += n
		pos += d
		dst = append(dst, int(pos))
	}
	return dst
}

// Contains reports whether the block holds position p. Positions are
// increasing, so the scan stops early once past p.
func (b Block) Contains(p int) bool {
	off, pos := 0, uint64(0)
	for i := 0; i < b.Count; i++ {
		d, n := binary.Uvarint(b.deltas[off:])
		off += n
		pos += d
		if pos == uint64(p) {
			return true
		}
		if pos > uint64(p) {
			return false
		}
	}
	return false
}

// Reader iterates the blocks of a posting blob.
type Reader struct {
	buf []byte
	off int
	doc uint64
}

// NewReader returns a reader over an encoded posting blob.
func NewReader(buf []byte) Reader { return Reader{buf: buf} }

// Next decodes the next block. ok is false at the end of the blob and on
// any malformed input (truncated varint, position data shorter than the
// declared count) — corrupt tails are unreachable rather than a panic.
func (r *Reader) Next() (b Block, ok bool) {
	if r.off >= len(r.buf) {
		return Block{}, false
	}
	gap, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.off = len(r.buf)
		return Block{}, false
	}
	off := r.off + n
	count, n := binary.Uvarint(r.buf[off:])
	if n <= 0 || count > uint64(len(r.buf)-off) {
		// A valid delta is at least one byte, so count can never exceed
		// the remaining bytes; this also rejects absurd counts early.
		r.off = len(r.buf)
		return Block{}, false
	}
	off += n
	start := off
	for i := uint64(0); i < count; i++ {
		_, n := binary.Uvarint(r.buf[off:])
		if n <= 0 {
			r.off = len(r.buf)
			return Block{}, false
		}
		off += n
	}
	r.doc += gap
	r.off = off
	return Block{Doc: r.doc, Count: int(count), deltas: r.buf[start:off:off]}, true
}
