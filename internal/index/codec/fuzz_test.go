package codec

import (
	"encoding/binary"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the reader: whatever the input —
// empty, truncated mid-varint, an honest blob with a corrupt tail, or a
// declared count far beyond the data — iteration must terminate without
// panicking, and any block handed out must decode within bounds.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})                               // empty
	f.Add(AppendBlock(nil, 0, nil))               // single doc, no positions
	f.Add(AppendBlock(nil, 1<<63, []int{1 << 62})) // max-gap varints
	full := AppendBlock(nil, 3, []int{1, 4, 4000})
	f.Add(full[:len(full)-1]) // truncated final delta
	f.Add([]byte{0x80})       // truncated varint
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1<<40)) // absurd count
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		blocks := 0
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			b.AppendPositions(nil)
			b.Contains(17)
			if blocks++; blocks > len(data) {
				t.Fatalf("more blocks than input bytes: reader not consuming")
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-chosen gaps/positions and requires the
// decoded blob to match exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), 0)
	f.Add(uint64(1), uint64(9), uint64(1<<50), 5)
	f.Fuzz(func(t *testing.T, gap, firstPos, posStep uint64, npos int) {
		if npos < 0 || npos > 1024 {
			return
		}
		pos := make([]int, 0, npos)
		p := firstPos % (1 << 40)
		step := posStep%(1<<20) + 1
		for i := 0; i < npos; i++ {
			pos = append(pos, int(p))
			p += step
		}
		blob := AppendBlock(nil, gap, pos)
		r := NewReader(blob)
		b, ok := r.Next()
		if !ok {
			t.Fatalf("decode failed for gap=%d npos=%d", gap, npos)
		}
		if b.Doc != gap || b.Count != npos {
			t.Fatalf("got doc=%d count=%d, want %d/%d", b.Doc, b.Count, gap, npos)
		}
		got := b.AppendPositions(nil)
		for i := range pos {
			if got[i] != pos[i] {
				t.Fatalf("position %d: got %d want %d", i, got[i], pos[i])
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("phantom second block")
		}
	})
}
