package index

import (
	"reflect"
	"testing"
)

// Entries that tie on (DocID, Sentence) must come back from Query in
// the same order no matter what order they were added in — parallel
// miners insert in scheduler order, so the sort key has to be total.
func TestSentimentIndexQueryOrderIndependentOfInsertion(t *testing.T) {
	entries := []SentimentEntry{
		{DocID: "d2", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "b"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: -1, Snippet: "tie"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: 1, Snippet: "tie"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: 1, Snippet: "a tie"},
		{DocID: "d1", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "x"},
	}
	forward := NewSentimentIndex()
	for _, e := range entries {
		forward.Add(e)
	}
	reverse := NewSentimentIndex()
	for i := len(entries) - 1; i >= 0; i-- {
		reverse.Add(entries[i])
	}

	got := forward.Query("NR70")
	want := []SentimentEntry{
		{DocID: "d1", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "x"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: 1, Snippet: "a tie"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: 1, Snippet: "tie"},
		{DocID: "d1", Sentence: 3, Subject: "nr70", Polarity: -1, Snippet: "tie"},
		{DocID: "d2", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query order:\n got %+v\nwant %+v", got, want)
	}
	if rev := reverse.Query("NR70"); !reflect.DeepEqual(rev, got) {
		t.Errorf("reversed insertion changed Query order:\n fwd %+v\n rev %+v", got, rev)
	}
}
