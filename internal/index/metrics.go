package index

import "webfountain/internal/metrics"

// Package-level metric handles, resolved once; Add and Search are on the
// ingest and query hot paths, so they pay only a clock read per call and
// atomic increments.
var (
	addsTotal    = metrics.Default().Counter("index.adds")
	addNs        = metrics.Default().Histogram("index.add.ns")
	addTokens    = metrics.Default().SizeHistogram("index.add.tokens")
	searchNs     = metrics.Default().Histogram("index.search.ns")
	shardScanNs  = metrics.Default().Histogram("index.regexp.shard.scan.ns")
	postingSizes = metrics.Default().SizeHistogram("index.posting.len")
	searchExpired = metrics.Default().Counter("index.search.expired")
)
