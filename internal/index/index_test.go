package index

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func buildIndex() *Index {
	ix := New()
	ix.Add("d1", strings.Fields("the camera takes excellent pictures"))
	ix.Add("d2", strings.Fields("the battery life is short"))
	ix.Add("d3", strings.Fields("excellent battery life and excellent pictures"))
	ix.Add("d4", strings.Fields("news about oil prices"))
	return ix
}

func TestTermQuery(t *testing.T) {
	ix := buildIndex()
	if got := ix.Search(Term("excellent")); !reflect.DeepEqual(got, []string{"d1", "d3"}) {
		t.Errorf("got %v", got)
	}
	if got := ix.Search(Term("EXCELLENT")); !reflect.DeepEqual(got, []string{"d1", "d3"}) {
		t.Errorf("case-insensitive got %v", got)
	}
	if got := ix.Search(Term("missing")); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestBooleanQueries(t *testing.T) {
	ix := buildIndex()
	if got := ix.Search(And(Term("excellent"), Term("battery"))); !reflect.DeepEqual(got, []string{"d3"}) {
		t.Errorf("AND got %v", got)
	}
	if got := ix.Search(Or(Term("camera"), Term("oil"))); !reflect.DeepEqual(got, []string{"d1", "d4"}) {
		t.Errorf("OR got %v", got)
	}
	if got := ix.Search(Not(Term("excellent"))); !reflect.DeepEqual(got, []string{"d2", "d4"}) {
		t.Errorf("NOT got %v", got)
	}
	if got := ix.Search(And(Term("excellent"), Not(Term("camera")))); !reflect.DeepEqual(got, []string{"d3"}) {
		t.Errorf("AND NOT got %v", got)
	}
	if got := ix.Search(And()); len(got) != 0 {
		t.Errorf("empty AND got %v", got)
	}
}

func TestPhraseQuery(t *testing.T) {
	ix := buildIndex()
	if got := ix.Search(Phrase("battery", "life")); !reflect.DeepEqual(got, []string{"d2", "d3"}) {
		t.Errorf("got %v", got)
	}
	// "life battery" never appears consecutively.
	if got := ix.Search(Phrase("life", "battery")); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	if got := ix.Search(Phrase("excellent", "pictures")); !reflect.DeepEqual(got, []string{"d1", "d3"}) {
		t.Errorf("got %v", got)
	}
	if got := ix.Search(Phrase()); len(got) != 0 {
		t.Errorf("empty phrase got %v", got)
	}
}

func TestRangeQuery(t *testing.T) {
	ix := buildIndex()
	ix.AddNumeric("d1", "price", 299)
	ix.AddNumeric("d2", "price", 99)
	ix.AddNumeric("d3", "price", 499)
	if got := ix.Search(Range("price", 100, 400)); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("got %v", got)
	}
	if got := ix.Search(Range("missingfield", 0, 1e9)); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestRegexpQuery(t *testing.T) {
	ix := buildIndex()
	q, err := Regexp("^pict")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Search(q); !reflect.DeepEqual(got, []string{"d1", "d3"}) {
		t.Errorf("got %v", got)
	}
	if _, err := Regexp("["); err == nil {
		t.Error("invalid pattern should fail")
	}
}

func TestConceptTokens(t *testing.T) {
	ix := buildIndex()
	ix.AddConcept("d1", "sentiment/camera/+")
	ix.AddConcept("d2", "sentiment/battery life/-")
	if got := ix.Search(Term("sentiment/camera/+")); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("got %v", got)
	}
	// Concepts and text mix in boolean queries.
	if got := ix.Search(And(Term("sentiment/camera/+"), Term("pictures"))); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("got %v", got)
	}
}

func TestDocFreqAndStats(t *testing.T) {
	ix := buildIndex()
	if ix.NumDocs() != 4 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DocFreq("excellent") != 2 {
		t.Errorf("DocFreq = %d", ix.DocFreq("excellent"))
	}
	if ix.Vocabulary() == 0 {
		t.Error("empty vocabulary")
	}
}

func TestConcurrentIndexing(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-d%d", w, i)
				ix.Add(id, []string{"shared", fmt.Sprintf("tok%d", i)})
				ix.Search(Term("shared"))
			}
		}(w)
	}
	wg.Wait()
	if got := len(ix.Search(Term("shared"))); got != 800 {
		t.Errorf("shared docs = %d", got)
	}
}

func TestSentimentIndexQueryAndCounts(t *testing.T) {
	si := NewSentimentIndex()
	si.Add(SentimentEntry{DocID: "d2", Sentence: 1, Subject: "NR70", Polarity: -1, Snippet: "s2"})
	si.Add(SentimentEntry{DocID: "d1", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "s1"})
	si.Add(SentimentEntry{DocID: "d1", Sentence: 2, Subject: "nr70", Polarity: 1, Snippet: "s3"})

	got := si.Query("NR70")
	if len(got) != 3 {
		t.Fatalf("got %+v", got)
	}
	if got[0].DocID != "d1" || got[0].Sentence != 0 {
		t.Errorf("ordering wrong: %+v", got)
	}
	c := si.Counts("nr70")
	if c.Positive != 2 || c.Negative != 1 {
		t.Errorf("counts = %+v", c)
	}
	if share := c.PositiveShare(); share < 0.66 || share > 0.67 {
		t.Errorf("share = %v", share)
	}
	if si.Len() != 3 {
		t.Errorf("Len = %d", si.Len())
	}
	if subs := si.Subjects(); len(subs) != 1 || subs[0] != "nr70" {
		t.Errorf("subjects = %v", subs)
	}
}

func TestSentimentIndexEmpty(t *testing.T) {
	si := NewSentimentIndex()
	if got := si.Query("missing"); len(got) != 0 {
		t.Errorf("got %+v", got)
	}
	c := si.Counts("missing")
	if c.Total() != 0 || c.PositiveShare() != 0 {
		t.Errorf("counts = %+v", c)
	}
}

// Property: every document that contains a term is found by Term, and AND
// with itself is idempotent.
func TestQuickTermCompleteness(t *testing.T) {
	f := func(docWords [][8]byte) bool {
		ix := New()
		type doc struct {
			id    string
			words []string
		}
		var docs []doc
		for i, w := range docWords {
			word := fmt.Sprintf("w%x", w[:2])
			d := doc{id: fmt.Sprintf("d%d", i), words: []string{word, "common"}}
			ix.Add(d.id, d.words)
			docs = append(docs, d)
		}
		for _, d := range docs {
			found := false
			for _, id := range ix.Search(Term(d.words[0])) {
				if id == d.id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		a := ix.Search(Term("common"))
		b := ix.Search(And(Term("common"), Term("common")))
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRemoveDocument(t *testing.T) {
	ix := buildIndex()
	ix.AddNumeric("d1", "price", 299)
	ix.AddConcept("d1", "sentiment/camera/+")
	ix.Remove("d1")
	if got := ix.Search(Term("camera")); len(got) != 0 {
		t.Errorf("d1 postings survive: %v", got)
	}
	if got := ix.Search(Term("excellent")); !reflect.DeepEqual(got, []string{"d3"}) {
		t.Errorf("other docs affected: %v", got)
	}
	if got := ix.Search(Range("price", 0, 1000)); len(got) != 0 {
		t.Errorf("numeric survives: %v", got)
	}
	if got := ix.Search(Term("sentiment/camera/+")); len(got) != 0 {
		t.Errorf("concept survives: %v", got)
	}
	if ix.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	ix.Remove("missing") // no-op
	if ix.NumDocs() != 3 {
		t.Error("no-op removal changed doc count")
	}
}

func TestRemoveShrinksVocabulary(t *testing.T) {
	ix := New()
	ix.Add("only", strings.Fields("unique words here"))
	before := ix.Vocabulary()
	ix.Remove("only")
	if before == 0 || ix.Vocabulary() != 0 {
		t.Errorf("vocabulary %d -> %d", before, ix.Vocabulary())
	}
}
