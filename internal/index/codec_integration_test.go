package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"webfountain/internal/index/codec"
)

// TestRemoveReAddCycle exercises the document-number interning contract:
// removing a document retires its number, so a re-Add interns a fresh,
// larger one and every term's block sequence stays non-decreasing. A
// wraparound bug here would corrupt gaps silently, so the cycle is
// driven many times against a one-shard index (worst case for number
// reuse) and cross-checked with exact searches.
func TestRemoveReAddCycle(t *testing.T) {
	ix := NewSharded(1)
	ix.Add("keep", []string{"alpha", "omega"})
	for i := 0; i < 50; i++ {
		ix.Add("cycle", []string{"alpha", "beta", "gamma"})
		if got := ix.Search(Term("beta")); !reflect.DeepEqual(got, []string{"cycle"}) {
			t.Fatalf("iter %d: beta -> %v", i, got)
		}
		if got := ix.Search(Phrase("alpha", "beta", "gamma")); !reflect.DeepEqual(got, []string{"cycle"}) {
			t.Fatalf("iter %d: phrase -> %v", i, got)
		}
		ix.Remove("cycle")
		if got := ix.Search(Term("beta")); len(got) != 0 {
			t.Fatalf("iter %d: beta after remove -> %v", i, got)
		}
		if got := ix.Search(Term("alpha")); !reflect.DeepEqual(got, []string{"keep"}) {
			t.Fatalf("iter %d: alpha after remove -> %v", i, got)
		}
	}
	if got := ix.Search(Phrase("alpha", "omega")); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("keep survived wrong: %v", got)
	}
}

// TestRepeatedConceptBlocks drives zero-gap blocks (same document,
// same concept, added repeatedly) through search and DocFreq.
func TestRepeatedConceptBlocks(t *testing.T) {
	ix := New()
	for i := 0; i < 5; i++ {
		ix.AddConcept("d1", "sentiment/nr70/+")
	}
	ix.AddConcept("d2", "sentiment/nr70/+")
	got := ix.Search(Term("sentiment/nr70/+"))
	if !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Fatalf("concept search: %v", got)
	}
	// DocFreq counts blocks (document frequency including repeats),
	// matching the previous posting-per-add layout.
	if df := ix.DocFreq("sentiment/nr70/+"); df != 6 {
		t.Fatalf("DocFreq = %d, want 6", df)
	}
}

// TestPostingStatsRatio indexes a realistic volume of small documents
// and checks the compressed footprint claim: the delta-varint blobs must
// be at least 3x smaller than the flat layout they replaced.
func TestPostingStatsRatio(t *testing.T) {
	ix := New()
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%03d", i)
	}
	for d := 0; d < 300; d++ {
		toks := make([]string, 80)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		ix.Add(fmt.Sprintf("doc-%04d", d), toks)
	}
	st := ix.PostingStats()
	if st.Blocks == 0 || st.Positions == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if r := st.Ratio(); r < 3 {
		t.Fatalf("compression ratio %.2f < 3 (stats %+v)", r, st)
	}
	t.Logf("posting stats: %+v ratio=%.2f", st, st.Ratio())
}

// TestSnapshotSurvivesMutation captures a posting view, mutates the
// index underneath it (appends and a remove), and verifies the snapshot
// still decodes to the original documents.
func TestSnapshotSurvivesMutation(t *testing.T) {
	ix := NewSharded(1)
	ix.Add("a", []string{"shared", "one"})
	ix.Add("b", []string{"shared", "two"})
	v := ix.postings("shared")

	ix.Add("c", []string{"shared"})
	ix.Remove("a")

	var got []string
	v.forEach(func(id string, _ codec.Block) bool {
		got = append(got, id)
		return true
	})
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("snapshot changed under mutation: %v", got)
	}
}
