// Package index implements the WebFountain indexer: an inverted index
// over text tokens and miner-generated conceptual tokens, supporting
// boolean, phrase, range and regular-expression queries, plus the
// sentiment index that serves query-time lookups in the miner's second
// operational mode.
package index

import (
	"regexp"
	"sort"
	"strings"
	"sync"
)

// posting records the positions of one term within one document.
type posting struct {
	docID     string
	positions []int
}

// Index is an inverted index, safe for concurrent use. Terms are
// lower-cased; conceptual tokens (miner outputs such as
// "sentiment/nr70/+") share the same term space and are distinguished by
// their prefix, exactly as the production indexer mixes text and concept
// tokens.
type Index struct {
	mu      sync.RWMutex
	terms   map[string][]posting
	numeric map[string]map[string]float64 // field -> docID -> value
	docLen  map[string]int
}

// New returns an empty index.
func New() *Index {
	return &Index{
		terms:   make(map[string][]posting),
		numeric: make(map[string]map[string]float64),
		docLen:  make(map[string]int),
	}
}

// Reset empties the index in place — postings, concepts, numeric
// attributes and document lengths all disappear. It is the first step of
// an index rebuild after the store recovers from disk: the recovered
// entities are re-Added onto a clean slate instead of merging with
// whatever a partial build left behind.
func (ix *Index) Reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.terms = make(map[string][]posting)
	ix.numeric = make(map[string]map[string]float64)
	ix.docLen = make(map[string]int)
}

// Add indexes a document's tokens (positions are the slice indices).
// Re-adding a document ID replaces nothing — the caller is responsible
// for not indexing the same document twice.
func (ix *Index) Add(docID string, tokens []string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.docLen[docID] = len(tokens)
	byTerm := make(map[string][]int)
	for i, t := range tokens {
		lt := strings.ToLower(t)
		byTerm[lt] = append(byTerm[lt], i)
	}
	for term, positions := range byTerm {
		ix.terms[term] = append(ix.terms[term], posting{docID: docID, positions: positions})
	}
}

// AddConcept indexes a conceptual token (no position) for a document.
func (ix *Index) AddConcept(docID, concept string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	lt := strings.ToLower(concept)
	ix.terms[lt] = append(ix.terms[lt], posting{docID: docID})
	if _, ok := ix.docLen[docID]; !ok {
		ix.docLen[docID] = 0
	}
}

// AddNumeric indexes a numeric attribute for range queries.
func (ix *Index) AddNumeric(docID, field string, value float64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	m, ok := ix.numeric[field]
	if !ok {
		m = make(map[string]float64)
		ix.numeric[field] = m
	}
	m[docID] = value
	if _, ok := ix.docLen[docID]; !ok {
		ix.docLen[docID] = 0
	}
}

// Remove deletes a document from the index: its postings, concepts and
// numeric attributes all disappear. Removing an unknown ID is a no-op.
func (ix *Index) Remove(docID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[docID]; !ok {
		return
	}
	delete(ix.docLen, docID)
	for term, ps := range ix.terms {
		kept := ps[:0]
		for _, p := range ps {
			if p.docID != docID {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.terms, term)
		} else {
			ix.terms[term] = kept
		}
	}
	for field, m := range ix.numeric {
		delete(m, docID)
		if len(m) == 0 {
			delete(ix.numeric, field)
		}
	}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms[strings.ToLower(term)])
}

// Vocabulary returns the number of distinct terms.
func (ix *Index) Vocabulary() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms)
}

// docSet is a set of document IDs.
type docSet map[string]bool

func (ix *Index) allDocs() docSet {
	out := make(docSet, len(ix.docLen))
	for id := range ix.docLen {
		out[id] = true
	}
	return out
}

// Query is a composable index query.
type Query interface {
	eval(ix *Index) docSet
}

// term matches documents containing a single term.
type termQuery string

func (q termQuery) eval(ix *Index) docSet {
	out := make(docSet)
	for _, p := range ix.terms[strings.ToLower(string(q))] {
		out[p.docID] = true
	}
	return out
}

// Term returns a query matching documents containing t.
func Term(t string) Query { return termQuery(t) }

type andQuery []Query

func (q andQuery) eval(ix *Index) docSet {
	if len(q) == 0 {
		return docSet{}
	}
	acc := q[0].eval(ix)
	for _, sub := range q[1:] {
		next := sub.eval(ix)
		for id := range acc {
			if !next[id] {
				delete(acc, id)
			}
		}
	}
	return acc
}

// And intersects sub-queries.
func And(qs ...Query) Query { return andQuery(qs) }

type orQuery []Query

func (q orQuery) eval(ix *Index) docSet {
	acc := make(docSet)
	for _, sub := range q {
		for id := range sub.eval(ix) {
			acc[id] = true
		}
	}
	return acc
}

// Or unions sub-queries.
func Or(qs ...Query) Query { return orQuery(qs) }

type notQuery struct{ q Query }

func (q notQuery) eval(ix *Index) docSet {
	exclude := q.q.eval(ix)
	out := ix.allDocs()
	for id := range exclude {
		delete(out, id)
	}
	return out
}

// Not matches all documents except those matching q.
func Not(q Query) Query { return notQuery{q} }

type phraseQuery []string

func (q phraseQuery) eval(ix *Index) docSet {
	out := make(docSet)
	if len(q) == 0 {
		return out
	}
	first := ix.terms[strings.ToLower(q[0])]
	for _, p := range first {
		if ix.phraseAt(p, q) {
			out[p.docID] = true
		}
	}
	return out
}

// phraseAt checks whether the phrase continues from each position of the
// first term's posting.
func (ix *Index) phraseAt(first posting, words []string) bool {
	for _, start := range first.positions {
		ok := true
		for k := 1; k < len(words); k++ {
			if !ix.hasPosition(strings.ToLower(words[k]), first.docID, start+k) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func (ix *Index) hasPosition(term, docID string, pos int) bool {
	for _, p := range ix.terms[term] {
		if p.docID != docID {
			continue
		}
		i := sort.SearchInts(p.positions, pos)
		return i < len(p.positions) && p.positions[i] == pos
	}
	return false
}

// Phrase matches documents containing the words consecutively.
func Phrase(words ...string) Query { return phraseQuery(words) }

type rangeQuery struct {
	field  string
	lo, hi float64
}

func (q rangeQuery) eval(ix *Index) docSet {
	out := make(docSet)
	for id, v := range ix.numeric[q.field] {
		if v >= q.lo && v <= q.hi {
			out[id] = true
		}
	}
	return out
}

// Range matches documents whose numeric field lies in [lo, hi].
func Range(field string, lo, hi float64) Query { return rangeQuery{field, lo, hi} }

type regexpQuery struct{ re *regexp.Regexp }

func (q regexpQuery) eval(ix *Index) docSet {
	out := make(docSet)
	for term, ps := range ix.terms {
		if !q.re.MatchString(term) {
			continue
		}
		for _, p := range ps {
			out[p.docID] = true
		}
	}
	return out
}

// Regexp matches documents containing any indexed term that matches the
// pattern. It returns an error for invalid patterns.
func Regexp(pattern string) (Query, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	return regexpQuery{re}, nil
}

// Search evaluates a query and returns matching document IDs, sorted.
func (ix *Index) Search(q Query) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := q.eval(ix)
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
