// Package index implements the WebFountain indexer: an inverted index
// over text tokens and miner-generated conceptual tokens, supporting
// boolean, phrase, range and regular-expression queries, plus the
// sentiment index that serves query-time lookups in the miner's second
// operational mode.
package index

import (
	"errors"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/index/codec"
)

// ErrDeadlineExceeded reports a search abandoned because its deadline
// passed mid-evaluation. No partial result is returned: a truncated doc
// set would silently look like an exact answer.
var ErrDeadlineExceeded = errors.New("index: search deadline exceeded")

// defaultShards is the term-shard count selected by New. Sixteen shards
// keep lock contention negligible up to the worker-pool sizes the
// platform runs (ingest workers are capped well below it) while the
// fan-out cost of shard-spanning queries stays small.
const defaultShards = 16

// termShard owns the posting lists of the terms that hash to it.
// Document IDs are interned per shard: ids maps the shard-local document
// number back to the ID string and idOf the reverse. Interning happens
// under the shard's write lock, so the numbers a term list accumulates
// are non-decreasing — exactly the property the delta-varint codec
// encodes into ~1-byte gaps.
type termShard struct {
	mu    sync.RWMutex
	terms map[string]*termList
	ids   []string
	idOf  map[string]uint32
}

// termList is one term's compressed posting list: a delta-varint blob of
// (document number, positions) blocks (see internal/index/codec) plus
// the bookkeeping appends need. Readers snapshot the blob by length and
// appends only ever write past it, so a snapshot stays immutable without
// holding the shard lock — the same contract the []posting slices gave.
type termList struct {
	blob []byte
	last uint32 // document number of the final block
	n    int    // block count (document frequency incl. repeats)
}

// docShard owns the membership and token counts of the documents that
// hash to it.
type docShard struct {
	mu     sync.RWMutex
	docLen map[string]int
}

// numShard owns the numeric attributes of the fields that hash to it.
type numShard struct {
	mu      sync.RWMutex
	numeric map[string]map[string]float64 // field -> docID -> value
}

// Index is an inverted index, safe for concurrent use. Terms are
// lower-cased; conceptual tokens (miner outputs such as
// "sentiment/nr70/+") share the same term space and are distinguished by
// their prefix, exactly as the production indexer mixes text and concept
// tokens.
//
// The index is sharded by term hash: each shard guards its own slice of
// the vocabulary with its own lock, so concurrent Add calls that touch
// disjoint shards do not serialize. Document membership and numeric
// attributes are sharded the same way (by document ID and field name
// respectively). Queries lock only the shards they touch;
// vocabulary-spanning queries (regexp) fan out across shards and merge.
type Index struct {
	termShards []termShard
	docShards  []docShard
	numShards  []numShard
}

// New returns an empty index with the default shard count.
func New() *Index { return NewSharded(defaultShards) }

// NewSharded returns an empty index with the given number of term-hashed
// shards (minimum 1). More shards admit more concurrent writers at a
// slight cost to vocabulary-spanning queries.
func NewSharded(shards int) *Index {
	if shards < 1 {
		shards = 1
	}
	ix := &Index{
		termShards: make([]termShard, shards),
		docShards:  make([]docShard, shards),
		numShards:  make([]numShard, shards),
	}
	for i := 0; i < shards; i++ {
		ix.termShards[i].terms = make(map[string]*termList)
		ix.termShards[i].idOf = make(map[string]uint32)
		ix.docShards[i].docLen = make(map[string]int)
		ix.numShards[i].numeric = make(map[string]map[string]float64)
	}
	return ix
}

// NumShards returns the term-shard count.
func (ix *Index) NumShards() int { return len(ix.termShards) }

// fnv32a is an inline FNV-1a over the string bytes: the shard hash,
// hand-rolled so hashing a term does not allocate.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (ix *Index) termShard(term string) *termShard {
	return &ix.termShards[fnv32a(term)%uint32(len(ix.termShards))]
}

func (ix *Index) docShard(docID string) *docShard {
	return &ix.docShards[fnv32a(docID)%uint32(len(ix.docShards))]
}

func (ix *Index) numShard(field string) *numShard {
	return &ix.numShards[fnv32a(field)%uint32(len(ix.numShards))]
}

// Reset empties the index in place — postings, concepts, numeric
// attributes and document lengths all disappear. It is the first step of
// an index rebuild after the store recovers from disk: the recovered
// entities are re-Added onto a clean slate instead of merging with
// whatever a partial build left behind.
func (ix *Index) Reset() {
	for i := range ix.termShards {
		sh := &ix.termShards[i]
		sh.mu.Lock()
		sh.terms = make(map[string]*termList)
		sh.ids = nil
		sh.idOf = make(map[string]uint32)
		sh.mu.Unlock()
	}
	for i := range ix.docShards {
		sh := &ix.docShards[i]
		sh.mu.Lock()
		sh.docLen = make(map[string]int)
		sh.mu.Unlock()
	}
	for i := range ix.numShards {
		sh := &ix.numShards[i]
		sh.mu.Lock()
		sh.numeric = make(map[string]map[string]float64)
		sh.mu.Unlock()
	}
}

// docBuilder accumulates one document's per-term position lists. The
// scratch state (the term map, the entry list, the token→entry indices)
// is pooled and reused across Add calls; the only per-call allocations
// are the position backing array and the strings that ToLower actually
// has to rewrite — both of which outlive the call inside the index.
type docBuilder struct {
	byTerm  map[string]int
	entries []docEntry
	tokIdx  []int32
}

// docEntry is one distinct term of the document under construction.
type docEntry struct {
	term  string
	shard uint32
	count int
	pos   []int
}

var builderPool = sync.Pool{
	New: func() any {
		return &docBuilder{byTerm: make(map[string]int, 64)}
	},
}

// build lowers the tokens, groups positions by term, and tags each term
// with its destination shard. Position slices are carved out of a single
// backing array sized to the token count.
func (b *docBuilder) build(tokens []string, nshards uint32) {
	b.entries = b.entries[:0]
	b.tokIdx = b.tokIdx[:0]
	for _, t := range tokens {
		lt := strings.ToLower(t)
		idx, ok := b.byTerm[lt]
		if !ok {
			idx = len(b.entries)
			b.entries = append(b.entries, docEntry{term: lt, shard: fnv32a(lt) % nshards})
			b.byTerm[lt] = idx
		}
		b.entries[idx].count++
		b.tokIdx = append(b.tokIdx, int32(idx))
	}
	backing := make([]int, len(tokens))
	off := 0
	for i := range b.entries {
		e := &b.entries[i]
		e.pos = backing[off:off : off+e.count]
		off += e.count
	}
	for i, idx := range b.tokIdx {
		e := &b.entries[idx]
		e.pos = append(e.pos, i)
	}
}

// release clears the scratch state and returns the builder to the pool.
func (b *docBuilder) release() {
	for k := range b.byTerm {
		delete(b.byTerm, k)
	}
	for i := range b.entries {
		b.entries[i] = docEntry{}
	}
	builderPool.Put(b)
}

// Add indexes a document's tokens (positions are the slice indices).
// Re-adding a document ID replaces nothing — the caller is responsible
// for not indexing the same document twice. Concurrent Adds serialize
// only on the shards whose terms they share.
func (ix *Index) Add(docID string, tokens []string) {
	span := addNs.Start()
	defer span.End()
	addsTotal.Inc()
	addTokens.Observe(int64(len(tokens)))
	b := builderPool.Get().(*docBuilder)
	b.build(tokens, uint32(len(ix.termShards)))

	ds := ix.docShard(docID)
	ds.mu.Lock()
	ds.docLen[docID] = len(tokens)
	ds.mu.Unlock()

	// One lock round per touched shard: scan the entry list once per
	// shard rather than regrouping into per-shard slices — for realistic
	// documents the scan is far cheaper than the allocation it avoids.
	for s := range ix.termShards {
		touched := false
		for i := range b.entries {
			if b.entries[i].shard == uint32(s) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		sh := &ix.termShards[s]
		sh.mu.Lock()
		docN := sh.intern(docID)
		for i := range b.entries {
			e := &b.entries[i]
			if e.shard != uint32(s) {
				continue
			}
			sh.appendBlock(e.term, docN, e.pos)
		}
		sh.mu.Unlock()
	}
	b.release()
}

// intern returns the shard-local document number for an ID, assigning
// the next one on first sight. Callers hold the shard write lock.
func (sh *termShard) intern(docID string) uint32 {
	if n, ok := sh.idOf[docID]; ok {
		return n
	}
	n := uint32(len(sh.ids))
	sh.ids = append(sh.ids, docID)
	sh.idOf[docID] = n
	return n
}

// appendBlock appends one (document, positions) block to a term's
// compressed list. Callers hold the shard write lock and must pass
// document numbers in non-decreasing order per term — which shard-lock
// interning guarantees.
func (sh *termShard) appendBlock(term string, docN uint32, positions []int) {
	tl := sh.terms[term]
	if tl == nil {
		tl = &termList{}
		sh.terms[term] = tl
	}
	gap := uint64(docN) // first block: the document number itself
	if tl.n > 0 {
		gap = uint64(docN - tl.last)
	}
	tl.blob = codec.AppendBlock(tl.blob, gap, positions)
	tl.last = docN
	tl.n++
}

// AddConcept indexes a conceptual token (no position) for a document.
func (ix *Index) AddConcept(docID, concept string) {
	lt := strings.ToLower(concept)
	sh := ix.termShard(lt)
	sh.mu.Lock()
	sh.appendBlock(lt, sh.intern(docID), nil)
	sh.mu.Unlock()
	ix.touchDoc(docID)
}

// AddNumeric indexes a numeric attribute for range queries.
func (ix *Index) AddNumeric(docID, field string, value float64) {
	sh := ix.numShard(field)
	sh.mu.Lock()
	m, ok := sh.numeric[field]
	if !ok {
		m = make(map[string]float64)
		sh.numeric[field] = m
	}
	m[docID] = value
	sh.mu.Unlock()
	ix.touchDoc(docID)
}

// touchDoc registers a document with zero tokens unless it is already
// known — concepts and numeric attributes alone make a document visible
// to Not queries and NumDocs, as before sharding.
func (ix *Index) touchDoc(docID string) {
	ds := ix.docShard(docID)
	ds.mu.Lock()
	if _, ok := ds.docLen[docID]; !ok {
		ds.docLen[docID] = 0
	}
	ds.mu.Unlock()
}

// Remove deletes a document from the index: its postings, concepts and
// numeric attributes all disappear. Removing an unknown ID is a no-op.
func (ix *Index) Remove(docID string) {
	ds := ix.docShard(docID)
	ds.mu.Lock()
	_, ok := ds.docLen[docID]
	if ok {
		delete(ds.docLen, docID)
	}
	ds.mu.Unlock()
	if !ok {
		return
	}
	for s := range ix.termShards {
		sh := &ix.termShards[s]
		sh.mu.Lock()
		docN, present := sh.idOf[docID]
		if !present {
			sh.mu.Unlock()
			continue
		}
		// Retire the document number: blocks carrying it are rebuilt away
		// below, and a re-Add of the same ID interns a fresh, larger
		// number so per-term monotonicity survives remove→re-add cycles.
		// (The ids slot stays — snapshots already handed out may still
		// map through it.)
		delete(sh.idOf, docID)
		var scratch []int
		for term, tl := range sh.terms {
			hit := false
			for r := codec.NewReader(tl.blob); ; {
				b, ok := r.Next()
				if !ok {
					break
				}
				if uint32(b.Doc) == docN {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			// Rebuild into a fresh list: blob snapshots already handed to
			// in-flight readers stay immutable, so queries never need to
			// hold a shard lock while walking positions.
			nt := &termList{}
			for r := codec.NewReader(tl.blob); ; {
				b, ok := r.Next()
				if !ok {
					break
				}
				if uint32(b.Doc) == docN {
					continue
				}
				scratch = b.AppendPositions(scratch[:0])
				gap := b.Doc
				if nt.n > 0 {
					gap = b.Doc - uint64(nt.last)
				}
				nt.blob = codec.AppendBlock(nt.blob, gap, scratch)
				nt.last = uint32(b.Doc)
				nt.n++
			}
			if nt.n == 0 {
				delete(sh.terms, term)
			} else {
				sh.terms[term] = nt
			}
		}
		sh.mu.Unlock()
	}
	for s := range ix.numShards {
		sh := &ix.numShards[s]
		sh.mu.Lock()
		for field, m := range sh.numeric {
			delete(m, docID)
			if len(m) == 0 {
				delete(sh.numeric, field)
			}
		}
		sh.mu.Unlock()
	}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int {
	n := 0
	for i := range ix.docShards {
		sh := &ix.docShards[i]
		sh.mu.RLock()
		n += len(sh.docLen)
		sh.mu.RUnlock()
	}
	return n
}

// postingView is an immutable snapshot of one term's posting list: the
// encoded blob plus the shard's ID table, both captured by length under
// the read lock. Appends only write past the captured lengths and
// removals reallocate, so a view is safe to read after the lock drops —
// the same snapshot contract the old []posting slices carried.
type postingView struct {
	blob []byte
	n    int
	ids  []string
}

// forEach decodes the view's blocks in order, resolving document numbers
// to ID strings. fn returning false stops the walk.
func (v postingView) forEach(fn func(id string, b codec.Block) bool) {
	for r := codec.NewReader(v.blob); ; {
		b, ok := r.Next()
		if !ok {
			return
		}
		if b.Doc >= uint64(len(v.ids)) {
			return // corrupt blob; unreachable rather than a panic
		}
		if !fn(v.ids[b.Doc], b) {
			return
		}
	}
}

// postings returns a stable snapshot of the posting list for an
// already-lowered term.
func (ix *Index) postings(lt string) postingView {
	sh := ix.termShard(lt)
	sh.mu.RLock()
	var v postingView
	if tl := sh.terms[lt]; tl != nil {
		v = postingView{
			blob: tl.blob[:len(tl.blob):len(tl.blob)],
			n:    tl.n,
			ids:  sh.ids[:len(sh.ids):len(sh.ids)],
		}
	}
	sh.mu.RUnlock()
	if v.n > 0 {
		postingSizes.Observe(int64(v.n))
	}
	return v
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	return ix.postings(strings.ToLower(term)).n
}

// PostingStats reports the memory footprint of the compressed posting
// lists against what the previous flat representation (a 40-byte posting
// struct per document block plus 8 bytes per position) would occupy.
type PostingStats struct {
	// EncodedBytes is the total size of the delta-varint blobs.
	EncodedBytes int64
	// FlatBytes is the computed footprint of the pre-codec layout:
	// per block a string header (16 B) and a position-slice header
	// (24 B), plus 8 B per position.
	FlatBytes int64
	// Blocks is the number of document blocks across all terms.
	Blocks int64
	// Positions is the number of encoded token positions.
	Positions int64
}

// Ratio returns FlatBytes / EncodedBytes (0 when empty).
func (s PostingStats) Ratio() float64 {
	if s.EncodedBytes == 0 {
		return 0
	}
	return float64(s.FlatBytes) / float64(s.EncodedBytes)
}

// PostingStats walks every term shard and totals the posting footprint.
func (ix *Index) PostingStats() PostingStats {
	var st PostingStats
	for i := range ix.termShards {
		sh := &ix.termShards[i]
		sh.mu.RLock()
		for _, tl := range sh.terms {
			st.EncodedBytes += int64(len(tl.blob))
			st.Blocks += int64(tl.n)
			for r := codec.NewReader(tl.blob); ; {
				b, ok := r.Next()
				if !ok {
					break
				}
				st.Positions += int64(b.Count)
			}
		}
		sh.mu.RUnlock()
	}
	st.FlatBytes = 40*st.Blocks + 8*st.Positions
	return st
}

// Vocabulary returns the number of distinct terms.
func (ix *Index) Vocabulary() int {
	n := 0
	for i := range ix.termShards {
		sh := &ix.termShards[i]
		sh.mu.RLock()
		n += len(sh.terms)
		sh.mu.RUnlock()
	}
	return n
}

// docSet is a set of document IDs.
type docSet map[string]bool

func (ix *Index) allDocs() docSet {
	out := make(docSet)
	for i := range ix.docShards {
		sh := &ix.docShards[i]
		sh.mu.RLock()
		for id := range sh.docLen {
			out[id] = true
		}
		sh.mu.RUnlock()
	}
	return out
}

// evalCtx threads per-search state — the index and an optional absolute
// deadline — through query evaluation. The expired latch is atomic
// because vocabulary-spanning queries check it from parallel shard
// scanners.
type evalCtx struct {
	ix       *Index
	deadline time.Time
	hit      atomic.Bool
}

// expired reports (and latches) whether the search deadline has passed.
// Evaluators poll it at shard and sub-query boundaries — coarse enough
// to stay off the per-document hot path, fine enough that an abandoned
// search returns within one shard scan of its deadline.
func (ec *evalCtx) expired() bool {
	if ec.deadline.IsZero() {
		return false
	}
	if ec.hit.Load() {
		return true
	}
	if time.Now().After(ec.deadline) {
		ec.hit.Store(true)
		return true
	}
	return false
}

// Query is a composable index query.
type Query interface {
	eval(ec *evalCtx) docSet
}

// term matches documents containing a single term.
type termQuery string

func (q termQuery) eval(ec *evalCtx) docSet {
	v := ec.ix.postings(strings.ToLower(string(q)))
	out := make(docSet, v.n)
	v.forEach(func(id string, _ codec.Block) bool {
		out[id] = true
		return true
	})
	return out
}

// Term returns a query matching documents containing t.
func Term(t string) Query { return termQuery(t) }

type andQuery []Query

func (q andQuery) eval(ec *evalCtx) docSet {
	if len(q) == 0 {
		return docSet{}
	}
	acc := q[0].eval(ec)
	for _, sub := range q[1:] {
		if ec.expired() {
			return acc
		}
		next := sub.eval(ec)
		for id := range acc {
			if !next[id] {
				delete(acc, id)
			}
		}
	}
	return acc
}

// And intersects sub-queries.
func And(qs ...Query) Query { return andQuery(qs) }

type orQuery []Query

func (q orQuery) eval(ec *evalCtx) docSet {
	acc := make(docSet)
	for _, sub := range q {
		if ec.expired() {
			return acc
		}
		for id := range sub.eval(ec) {
			acc[id] = true
		}
	}
	return acc
}

// Or unions sub-queries.
func Or(qs ...Query) Query { return orQuery(qs) }

type notQuery struct{ q Query }

func (q notQuery) eval(ec *evalCtx) docSet {
	exclude := q.q.eval(ec)
	if ec.expired() {
		return docSet{}
	}
	out := ec.ix.allDocs()
	for id := range exclude {
		delete(out, id)
	}
	return out
}

// Not matches all documents except those matching q.
func Not(q Query) Query { return notQuery{q} }

type phraseQuery []string

func (q phraseQuery) eval(ec *evalCtx) docSet {
	out := make(docSet)
	if len(q) == 0 {
		return out
	}
	// Snapshot every word's posting list up front: one shard-lock round
	// per word instead of one per (position, word) probe. Document IDs
	// are compared as strings across lists — each word may live in a
	// different shard, and document numbers are shard-local.
	lists := make([]postingView, len(q))
	for i, w := range q {
		lists[i] = ec.ix.postings(strings.ToLower(w))
		if lists[i].n == 0 {
			return out
		}
	}
	var starts []int
	n := 0
	lists[0].forEach(func(id string, b codec.Block) bool {
		if n++; n%256 == 0 && ec.expired() {
			return false
		}
		starts = b.AppendPositions(starts[:0])
		if phraseAt(lists, id, starts) {
			out[id] = true
		}
		return true
	})
	return out
}

// phraseAt checks whether the phrase continues from each of the first
// word's start positions in the given document.
func phraseAt(lists []postingView, docID string, starts []int) bool {
	for _, start := range starts {
		ok := true
		for k := 1; k < len(lists); k++ {
			if !hasPosition(lists[k], docID, start+k) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func hasPosition(v postingView, docID string, pos int) bool {
	found := false
	v.forEach(func(id string, b codec.Block) bool {
		if id != docID {
			return true
		}
		found = b.Contains(pos)
		return false // the document's block decides, as before
	})
	return found
}

// Phrase matches documents containing the words consecutively.
func Phrase(words ...string) Query { return phraseQuery(words) }

type rangeQuery struct {
	field  string
	lo, hi float64
}

func (q rangeQuery) eval(ec *evalCtx) docSet {
	out := make(docSet)
	if ec.expired() {
		return out
	}
	sh := ec.ix.numShard(q.field)
	sh.mu.RLock()
	for id, v := range sh.numeric[q.field] {
		if v >= q.lo && v <= q.hi {
			out[id] = true
		}
	}
	sh.mu.RUnlock()
	return out
}

// Range matches documents whose numeric field lies in [lo, hi].
func Range(field string, lo, hi float64) Query { return rangeQuery{field, lo, hi} }

type regexpQuery struct{ re *regexp.Regexp }

// eval scans the whole vocabulary, the one query shape that touches
// every shard. Shards are scanned by a bounded fan-out of workers and
// the per-shard matches merged.
func (q regexpQuery) eval(ec *evalCtx) docSet {
	ix := ec.ix
	nshards := len(ix.termShards)
	workers := runtime.GOMAXPROCS(0)
	if workers > nshards {
		workers = nshards
	}
	if workers <= 1 {
		out := make(docSet)
		for s := 0; s < nshards; s++ {
			if ec.expired() {
				break
			}
			q.scanShard(ix, s, out)
		}
		return out
	}
	partial := make([]docSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make(docSet)
			for s := w; s < nshards; s += workers {
				if ec.expired() {
					break
				}
				q.scanShard(ix, s, out)
			}
			partial[w] = out
		}(w)
	}
	wg.Wait()
	merged := partial[0]
	for _, p := range partial[1:] {
		for id := range p {
			merged[id] = true
		}
	}
	return merged
}

// scanShard adds the shard's matching documents to out.
func (q regexpQuery) scanShard(ix *Index, s int, out docSet) {
	span := shardScanNs.Start()
	defer span.End()
	sh := &ix.termShards[s]
	sh.mu.RLock()
	for term, tl := range sh.terms {
		if !q.re.MatchString(term) {
			continue
		}
		for r := codec.NewReader(tl.blob); ; {
			b, ok := r.Next()
			if !ok {
				break
			}
			if b.Doc < uint64(len(sh.ids)) {
				out[sh.ids[b.Doc]] = true
			}
		}
	}
	sh.mu.RUnlock()
}

// Regexp matches documents containing any indexed term that matches the
// pattern. It returns an error for invalid patterns.
func Regexp(pattern string) (Query, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	return regexpQuery{re}, nil
}

// Search evaluates a query and returns matching document IDs, sorted.
// Queries lock only the shards they touch, so searches proceed
// concurrently with indexing; a search overlapping an Add observes the
// document either fully or not at all per term, and the result is exact
// once the writers it overlaps have returned.
func (ix *Index) Search(q Query) []string {
	out, _ := ix.SearchWithDeadline(q, time.Time{})
	return out
}

// SearchWithDeadline evaluates a query under an absolute deadline (zero
// = unbounded). Evaluation polls the deadline at shard and sub-query
// boundaries; once it passes, the search is abandoned and
// ErrDeadlineExceeded returned — an overloaded serving path sheds the
// scan instead of finishing it late. This is the index-side leg of the
// platform's end-to-end deadline propagation: vinci hands the handler
// the request's remaining budget and the handler forwards it here.
func (ix *Index) SearchWithDeadline(q Query, deadline time.Time) ([]string, error) {
	span := searchNs.Start()
	defer span.End()
	ec := &evalCtx{ix: ix, deadline: deadline}
	set := q.eval(ec)
	if ec.hit.Load() {
		searchExpired.Inc()
		return nil, ErrDeadlineExceeded
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}
