package index

import (
	"sort"
	"strings"
	"sync"
)

// SentimentEntry is one (subject, sentiment) fact extracted offline and
// indexed for query-time retrieval: the second operational mode applies
// the sentiment miner to the whole corpus and serves real-time queries
// from this index.
type SentimentEntry struct {
	// DocID is the entity the sentiment was found in.
	DocID string
	// Sentence is the sentence index within the document.
	Sentence int
	// Subject is the normalized (lower-cased) subject the sentiment is
	// about.
	Subject string
	// Polarity is +1 or -1.
	Polarity int
	// Snippet is the sentiment-bearing sentence text, for display.
	Snippet string
	// Feature is the target phrase the sentiment was directed at, the
	// aspect dimension of the serving tier's aggregates ("" when the
	// analyzer resolved no target).
	Feature string
}

// SentimentCounts aggregates a subject's sentiment.
type SentimentCounts struct {
	Positive, Negative int
}

// Total returns the number of polar mentions.
func (c SentimentCounts) Total() int { return c.Positive + c.Negative }

// PositiveShare returns the fraction of positive mentions (0 when empty).
func (c SentimentCounts) PositiveShare() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Positive) / float64(c.Total())
}

// SentimentIndex serves subject-sentiment queries, safe for concurrent
// use.
type SentimentIndex struct {
	mu        sync.RWMutex
	bySubject map[string][]SentimentEntry
}

// NewSentimentIndex returns an empty sentiment index.
func NewSentimentIndex() *SentimentIndex {
	return &SentimentIndex{bySubject: make(map[string][]SentimentEntry)}
}

// Add indexes one entry; the subject key is case-insensitive.
func (si *SentimentIndex) Add(e SentimentEntry) {
	e.Subject = strings.ToLower(e.Subject)
	si.mu.Lock()
	defer si.mu.Unlock()
	si.bySubject[e.Subject] = append(si.bySubject[e.Subject], e)
}

// Query returns all entries for a subject, ordered by (DocID, Sentence,
// Polarity, Snippet). The sort is stable and the key total, so entries
// that tie on document and sentence — the same subject twice in one
// sentence — come back in the same order regardless of whether they were
// mined serially or in parallel.
func (si *SentimentIndex) Query(subject string) []SentimentEntry {
	si.mu.RLock()
	entries := si.bySubject[strings.ToLower(subject)]
	out := make([]SentimentEntry, len(entries))
	copy(out, entries)
	si.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		if out[i].Sentence != out[j].Sentence {
			return out[i].Sentence < out[j].Sentence
		}
		if out[i].Polarity != out[j].Polarity {
			return out[i].Polarity > out[j].Polarity
		}
		if out[i].Feature != out[j].Feature {
			return out[i].Feature < out[j].Feature
		}
		return out[i].Snippet < out[j].Snippet
	})
	return out
}

// Counts aggregates the polar mentions of a subject.
func (si *SentimentIndex) Counts(subject string) SentimentCounts {
	si.mu.RLock()
	defer si.mu.RUnlock()
	var c SentimentCounts
	for _, e := range si.bySubject[strings.ToLower(subject)] {
		if e.Polarity > 0 {
			c.Positive++
		} else if e.Polarity < 0 {
			c.Negative++
		}
	}
	return c
}

// Subjects returns every indexed subject, sorted.
func (si *SentimentIndex) Subjects() []string {
	si.mu.RLock()
	defer si.mu.RUnlock()
	out := make([]string, 0, len(si.bySubject))
	for s := range si.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// All returns every indexed entry in a deterministic total order
// (subject, then the Query key) — the serving tier's checkpoint writer
// dumps the index through it, so two indexes holding the same entries
// always serialize to the same bytes regardless of insertion order.
func (si *SentimentIndex) All() []SentimentEntry {
	si.mu.RLock()
	out := make([]SentimentEntry, 0, 64)
	for _, es := range si.bySubject {
		out = append(out, es...)
	}
	si.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		if out[i].Sentence != out[j].Sentence {
			return out[i].Sentence < out[j].Sentence
		}
		if out[i].Polarity != out[j].Polarity {
			return out[i].Polarity > out[j].Polarity
		}
		if out[i].Feature != out[j].Feature {
			return out[i].Feature < out[j].Feature
		}
		return out[i].Snippet < out[j].Snippet
	})
	return out
}

// Len returns the total number of indexed entries.
func (si *SentimentIndex) Len() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	n := 0
	for _, es := range si.bySubject {
		n += len(es)
	}
	return n
}
