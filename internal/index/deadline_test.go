package index

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestSearchWithDeadlineUnbounded: a zero or generous deadline changes
// nothing about the result.
func TestSearchWithDeadlineUnbounded(t *testing.T) {
	ix := buildIndex()
	want := ix.Search(Or(Term("excellent"), Term("oil")))
	got, err := ix.SearchWithDeadline(Or(Term("excellent"), Term("oil")), time.Time{})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("zero deadline: got %v, %v; want %v", got, err, want)
	}
	got, err = ix.SearchWithDeadline(Or(Term("excellent"), Term("oil")), time.Now().Add(time.Minute))
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("roomy deadline: got %v, %v; want %v", got, err, want)
	}
}

// TestSearchWithDeadlineExpired: a deadline already in the past sheds
// the search with ErrDeadlineExceeded instead of returning a silently
// partial result.
func TestSearchWithDeadlineExpired(t *testing.T) {
	ix := buildIndex()
	past := time.Now().Add(-time.Millisecond)
	queries := []Query{
		Or(Term("excellent"), Term("oil"), Term("battery")),
		And(Term("excellent"), Term("battery")),
		Not(Term("oil")),
		Range("price", 0, 100),
	}
	if re, err := Regexp("ex.*"); err == nil {
		queries = append(queries, re)
	}
	for i, q := range queries {
		ids, err := ix.SearchWithDeadline(q, past)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("query %d: err = %v, want ErrDeadlineExceeded", i, err)
		}
		if ids != nil {
			t.Errorf("query %d: got partial result %v, want nil", i, ids)
		}
	}
}
