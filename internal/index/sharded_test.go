package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// shardedDocs builds a deterministic corpus of small documents with
// overlapping vocabulary, so term, phrase and regexp queries all have
// multi-document answers.
func shardedDocs(n int) map[string][]string {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{
		"camera", "battery", "life", "excellent", "pictures", "flash",
		"lens", "zoom", "menu", "price", "terrible", "support", "quality",
	}
	docs := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		ln := 4 + rng.Intn(12)
		words := make([]string, ln)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		// Give half the docs a fixed phrase so SearchPhrase has stable
		// multi-document answers.
		if i%2 == 0 {
			words = append(words, "battery", "life")
		}
		docs[fmt.Sprintf("doc-%04d", i)] = words
	}
	return docs
}

func shardedQueries(t *testing.T) []Query {
	t.Helper()
	re, err := Regexp("^batt")
	if err != nil {
		t.Fatal(err)
	}
	return []Query{
		Term("camera"),
		Term("battery"),
		And(Term("battery"), Term("excellent")),
		Or(Term("flash"), Term("zoom")),
		Not(Term("camera")),
		Phrase("battery", "life"),
		re,
	}
}

// TestShardedMatchesSerialSeedSemantics: an index built by concurrent
// Adds must answer every query shape identically to one built by the
// serial path — the determinism contract parallel ingest relies on.
func TestShardedMatchesSerialSeedSemantics(t *testing.T) {
	docs := shardedDocs(200)

	serial := New()
	for id, words := range docs {
		serial.Add(id, words)
	}

	parallel := NewSharded(8)
	var wg sync.WaitGroup
	idCh := make(chan string)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range idCh {
				parallel.Add(id, docs[id])
			}
		}()
	}
	for id := range docs {
		idCh <- id
	}
	close(idCh)
	wg.Wait()

	if s, p := serial.NumDocs(), parallel.NumDocs(); s != p {
		t.Fatalf("NumDocs: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Vocabulary(), parallel.Vocabulary(); s != p {
		t.Fatalf("Vocabulary: serial %d, parallel %d", s, p)
	}
	for qi, q := range shardedQueries(t) {
		s, p := serial.Search(q), parallel.Search(q)
		if !reflect.DeepEqual(s, p) {
			t.Errorf("query %d: serial %v, parallel %v", qi, s, p)
		}
	}
}

// TestShardedConcurrentIngestSearchDelete is the -race stress test for
// the sharded index: writers, deleters and every query shape run
// concurrently, then the final state is checked exactly.
func TestShardedConcurrentIngestSearchDelete(t *testing.T) {
	ix := NewSharded(8)
	queries := shardedQueries(t)
	const (
		writers    = 4
		docsPerW   = 60
		searchIter = 80
	)
	var wg sync.WaitGroup
	// Writers: each adds its own documents, removes every third one, and
	// sprinkles in concepts and numeric attributes.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerW; i++ {
				id := fmt.Sprintf("w%d-d%03d", w, i)
				ix.Add(id, strings.Fields("shared battery life excellent pictures"))
				ix.AddConcept(id, fmt.Sprintf("sentiment/doc%d/+", i))
				ix.AddNumeric(id, "score", float64(i))
				if i%3 == 0 {
					ix.Remove(id)
				}
			}
		}(w)
	}
	// Readers: hammer every query shape while the writers run.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < searchIter; i++ {
				for _, q := range queries {
					ix.Search(q)
				}
				ix.Search(Range("score", 10, 40))
				ix.NumDocs()
				ix.DocFreq("battery")
				ix.Vocabulary()
			}
		}()
	}
	wg.Wait()

	// Exactly the non-removed documents remain: per writer, docsPerW
	// minus the i%3==0 removals.
	removedPerW := (docsPerW + 2) / 3
	want := writers * (docsPerW - removedPerW)
	if got := ix.NumDocs(); got != want {
		t.Fatalf("NumDocs = %d, want %d", got, want)
	}
	if got := len(ix.Search(Term("shared"))); got != want {
		t.Fatalf("Term(shared) = %d docs, want %d", got, want)
	}
	if got := len(ix.Search(Phrase("battery", "life"))); got != want {
		t.Fatalf("Phrase = %d docs, want %d", got, want)
	}
	// Removed docs must not linger in numeric or concept space.
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("w%d-d%03d", w, 0)
		for _, got := range ix.Search(Range("score", -1, docsPerW+1)) {
			if got == id {
				t.Fatalf("removed doc %s still matches numeric range", id)
			}
		}
	}
}

// TestNewShardedClamps: a non-positive shard count still yields a
// working index.
func TestNewShardedClamps(t *testing.T) {
	ix := NewSharded(0)
	if ix.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", ix.NumShards())
	}
	ix.Add("d1", strings.Fields("lone word"))
	if got := ix.Search(Term("word")); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Fatalf("got %v", got)
	}
}

// TestShardedRemoveConcurrentWithSearch: posting-list snapshots handed
// to a reader must stay valid while Remove compacts the same term.
func TestShardedRemoveConcurrentWithSearch(t *testing.T) {
	ix := NewSharded(4)
	for i := 0; i < 100; i++ {
		ix.Add(fmt.Sprintf("d%03d", i), strings.Fields("common unique"+fmt.Sprint(i)))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i += 2 {
			ix.Remove(fmt.Sprintf("d%03d", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ix.Search(Phrase("common"))
			ix.Search(Term("common"))
		}
	}()
	wg.Wait()
	if got := len(ix.Search(Term("common"))); got != 50 {
		t.Fatalf("remaining docs = %d, want 50", got)
	}
}
